"""Prediction FSMs: textbook two-bit counter and the Skylake variant."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bpu.fsm import (
    FSMSpec,
    State,
    level_dtype,
    skylake_fsm,
    textbook_2bit_fsm,
)
from repro.core.patterns import expected_probe_pattern

ALL_FSMS = [textbook_2bit_fsm, skylake_fsm]


def run(fsm: FSMSpec, level: int, outcomes: str) -> int:
    for ch in outcomes:
        level = fsm.step(level, ch == "T")
    return level


class TestStateEnum:
    def test_taken_states_predict_taken(self):
        assert State.ST.predicts_taken
        assert State.WT.predicts_taken
        assert not State.WN.predicts_taken
        assert not State.SN.predicts_taken

    def test_strong_states(self):
        assert State.ST.is_strong
        assert State.SN.is_strong
        assert not State.WT.is_strong
        assert not State.WN.is_strong

    def test_values_are_ordered(self):
        assert State.SN < State.WN < State.WT < State.ST


class TestTextbookFSM:
    def setup_method(self):
        self.fsm = textbook_2bit_fsm()

    def test_four_levels_map_one_to_one(self):
        assert self.fsm.n_levels == 4
        assert [self.fsm.public_state(i) for i in range(4)] == [
            State.SN,
            State.WN,
            State.WT,
            State.ST,
        ]

    def test_figure3_transitions_taken(self):
        # SN -> WN -> WT -> ST -> ST
        assert run(self.fsm, 0, "T") == 1
        assert run(self.fsm, 1, "T") == 2
        assert run(self.fsm, 2, "T") == 3
        assert run(self.fsm, 3, "T") == 3

    def test_figure3_transitions_not_taken(self):
        # ST -> WT -> WN -> SN -> SN
        assert run(self.fsm, 3, "N") == 2
        assert run(self.fsm, 2, "N") == 1
        assert run(self.fsm, 1, "N") == 0
        assert run(self.fsm, 0, "N") == 0

    def test_predictions_by_level(self):
        assert [self.fsm.predicts(i) for i in range(4)] == [
            False,
            False,
            True,
            True,
        ]

    def test_saturate(self):
        assert self.fsm.saturate(True) == 3
        assert self.fsm.saturate(False) == 0

    def test_not_ambiguous(self):
        assert not self.fsm.taken_states_ambiguous


class TestSkylakeFSM:
    def setup_method(self):
        self.fsm = skylake_fsm()

    def test_five_levels(self):
        assert self.fsm.n_levels == 5

    def test_ttt_saturates(self):
        """Three taken outcomes reach ST, as the paper's TTT prime does."""
        assert self.fsm.public_state(run(self.fsm, 0, "TTT")) is State.ST

    def test_sticky_taken_side(self):
        """Leaving the taken side takes two not-taken outcomes from ST."""
        st = run(self.fsm, 0, "TTT")
        after_one = self.fsm.step(st, False)
        after_two = self.fsm.step(after_one, False)
        assert self.fsm.predicts(after_one)  # still predicts taken
        assert self.fsm.predicts(after_two)  # still predicts taken
        after_three = self.fsm.step(after_two, False)
        assert not self.fsm.predicts(after_three)

    def test_not_taken_side_is_textbook(self):
        assert run(self.fsm, 0, "N") == 0
        wn = run(self.fsm, 0, "NNNT")
        assert self.fsm.public_state(wn) is State.WN

    def test_ambiguity_flag(self):
        assert self.fsm.taken_states_ambiguous


@pytest.mark.parametrize("factory", ALL_FSMS)
class TestTable1:
    """Every row of the paper's Table 1, per FSM.

    Expected observations: column 5 of Table 1, with footnote 1 applied
    for the Skylake FSM (MH -> MM in the TTT/N/NN row).
    """

    ROWS = [
        ("TTT", "T", "TT", "HH", "HH"),
        ("TTT", "T", "NN", "MM", "MM"),
        ("TTT", "N", "TT", "HH", "HH"),
        ("TTT", "N", "NN", "MH", "MM"),  # footnote 1
        ("NNN", "T", "TT", "MH", "MH"),
        ("NNN", "T", "NN", "HH", "HH"),
        ("NNN", "N", "TT", "MM", "MM"),
        ("NNN", "N", "NN", "HH", "HH"),
    ]

    def test_all_rows(self, factory):
        fsm = factory()
        skylake = fsm.taken_states_ambiguous
        for prime, target, probe, textbook_obs, skylake_obs in self.ROWS:
            level = run(fsm, 0, prime + target)
            pattern, _ = expected_probe_pattern(
                fsm, level, [c == "T" for c in probe]
            )
            expected = skylake_obs if skylake else textbook_obs
            assert pattern == expected, (prime, target, probe)

    def test_prime_reaches_strong_states(self, factory):
        fsm = factory()
        assert fsm.public_state(run(fsm, 0, "TTT")) is State.ST
        assert fsm.public_state(run(fsm, 3, "NNN")) is State.SN


@pytest.mark.parametrize("factory", ALL_FSMS)
class TestFSMProperties:
    @given(data=st.data())
    def test_levels_stay_in_range(self, factory, data):
        fsm = factory()
        level = data.draw(st.integers(0, fsm.n_levels - 1))
        outcomes = data.draw(st.lists(st.booleans(), max_size=50))
        for taken in outcomes:
            level = fsm.step(level, taken)
            assert 0 <= level < fsm.n_levels

    @given(data=st.data())
    def test_n_same_outcomes_saturate(self, factory, data):
        """After n_levels identical outcomes the FSM is pinned."""
        fsm = factory()
        level = data.draw(st.integers(0, fsm.n_levels - 1))
        taken = data.draw(st.booleans())
        for _ in range(fsm.n_levels):
            level = fsm.step(level, taken)
        assert level == fsm.saturate(taken)
        # And it stays there.
        assert fsm.step(level, taken) == level

    @given(data=st.data())
    def test_prediction_matches_public_state(self, factory, data):
        fsm = factory()
        level = data.draw(st.integers(0, fsm.n_levels - 1))
        assert fsm.predicts(level) == fsm.public_state(level).predicts_taken

    @given(data=st.data())
    def test_vectorised_step_matches_scalar(self, factory, data):
        fsm = factory()
        levels = data.draw(
            st.lists(st.integers(0, fsm.n_levels - 1), min_size=1, max_size=20)
        )
        taken = data.draw(st.booleans())
        arr = np.array(levels, dtype=np.int8)
        stepped = fsm.step_array(arr, taken)
        assert stepped.tolist() == [fsm.step(l, taken) for l in levels]

    @given(data=st.data())
    def test_vectorised_predict_matches_scalar(self, factory, data):
        fsm = factory()
        levels = data.draw(
            st.lists(st.integers(0, fsm.n_levels - 1), min_size=1, max_size=20)
        )
        arr = np.array(levels, dtype=np.int8)
        assert fsm.predicts_array(arr).tolist() == [
            fsm.predicts(l) for l in levels
        ]

    def test_level_for_roundtrip(self, factory):
        fsm = factory()
        for state in State:
            assert fsm.public_state(fsm.level_for(state)) is state


class TestSpecValidation:
    def test_mismatched_table_lengths_rejected(self):
        with pytest.raises(ValueError):
            FSMSpec(
                name="bad",
                n_levels=2,
                predict_taken=(False,),
                next_on_taken=(1, 1),
                next_on_not_taken=(0, 0),
                to_public=(State.SN, State.ST),
            )

    def test_out_of_range_transition_rejected(self):
        with pytest.raises(ValueError):
            FSMSpec(
                name="bad",
                n_levels=2,
                predict_taken=(False, True),
                next_on_taken=(1, 2),
                next_on_not_taken=(0, 0),
                to_public=(State.SN, State.ST),
            )

    def test_level_for_missing_state(self):
        fsm = FSMSpec(
            name="two-state",
            n_levels=2,
            predict_taken=(False, True),
            next_on_taken=(1, 1),
            next_on_not_taken=(0, 0),
            to_public=(State.SN, State.ST),
        )
        with pytest.raises(ValueError):
            fsm.level_for(State.WT)


def wide_saturating_fsm(n_levels: int = 256) -> FSMSpec:
    """A linear saturating counter with ``n_levels`` levels.

    Exercises the >127-level regime where int8 level storage would
    silently wrap (the taken side saturates at ``n_levels - 1 > 127``).
    """
    top = n_levels - 1
    half = n_levels // 2
    public = [State.SN] + [State.WN] * (half - 1)
    public += [State.WT] * (top - half) + [State.ST]
    return FSMSpec(
        name=f"wide-{n_levels}",
        n_levels=n_levels,
        predict_taken=tuple(i >= half for i in range(n_levels)),
        next_on_taken=tuple(min(i + 1, top) for i in range(n_levels)),
        next_on_not_taken=tuple(max(i - 1, 0) for i in range(n_levels)),
        to_public=tuple(public),
    )


class TestWideCounters:
    """Regression: a 256-level FSM must not wrap int8 level storage."""

    def test_level_dtype_widens_with_n_levels(self):
        assert level_dtype(4) == np.int8
        assert level_dtype(128) == np.int8
        assert level_dtype(129) == np.int16
        assert level_dtype(1 << 20) == np.int32
        with pytest.raises(ValueError):
            level_dtype(0)

    def test_256_level_fsm_saturates_without_wrapping(self):
        fsm = wide_saturating_fsm(256)
        assert fsm.step_table.dtype == np.int16
        level = 0
        for _ in range(300):
            level = fsm.step(level, True)
        assert level == 255  # int8 would have wrapped negative at 128
        assert fsm.public_state(level) is State.ST

    def test_256_level_pht_stores_high_levels(self):
        from repro.bpu.pht import PatternHistoryTable

        pht = PatternHistoryTable(8, wide_saturating_fsm(256))
        assert pht.levels.dtype == np.int16
        pht.set_level(3, 255)
        assert pht.level(3) == 255
        for _ in range(200):
            pht.update(0, True)
        assert pht.level(0) == 200 + pht._initial_level
        snap = pht.snapshot()
        pht.update(3, False)
        pht.restore(snap)
        assert pht.level(3) == 255

    def test_256_level_randomize_covers_high_levels(self):
        from repro.bpu.pht import PatternHistoryTable

        pht = PatternHistoryTable(4096, wide_saturating_fsm(256))
        pht.randomize(np.random.default_rng(0))
        assert int(pht.levels.max()) > 127
        assert int(pht.levels.min()) >= 0

    def test_wide_selector_counters_do_not_wrap(self):
        from repro.bpu.selector import SelectorTable

        sel = SelectorTable(16, initial_counter=0, counter_bits=9)
        assert sel.max_counter == 511
        for _ in range(600):
            sel.update(5, bimodal_correct=False, gshare_correct=True)
        assert sel.counter(5) == 511  # int8 would have wrapped at 128
        assert sel.choose(5).name == "GSHARE"
