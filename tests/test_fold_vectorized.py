"""Vectorized transition-map fold vs the reference loop, and the
compiled-block cache.

The randomisation-block fast path folds 100k outcomes through the
prediction FSM via :class:`repro.bpu.fsm.TransitionMonoid` (map
composition + segmented scan).  These tests pin it, entry for entry,
to the obvious step-once-per-branch reference implementation
(:meth:`RandomizationBlock.fold_map_reference`) across all three
microarchitecture presets, with and without the §10.2 index-key and
partitioning mitigations.
"""

import numpy as np
import pytest

from repro.bpu import PRESETS
from repro.bpu.fsm import skylake_fsm, textbook_2bit_fsm
from repro.bpu.hashes import apply_hash, fold_history
from repro.cpu import PhysicalCore, Process
from repro.core.randomizer import (
    RandomizationBlock,
    clear_compile_cache,
    compile_cache_info,
)
from repro.mitigations import BpuPartitioning, PhtIndexRandomization

BLOCK_N = 4000

FSMS = [textbook_2bit_fsm(), skylake_fsm()]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestTransitionMonoid:
    @pytest.mark.parametrize("fsm", FSMS, ids=lambda f: f.name)
    def test_identity_is_id_zero(self, fsm):
        monoid = fsm.transition_monoid()
        assert monoid.IDENTITY == 0
        assert (monoid.maps[0] == np.arange(fsm.n_levels)).all()

    @pytest.mark.parametrize("fsm", FSMS, ids=lambda f: f.name)
    def test_outcome_maps_match_step_table(self, fsm):
        monoid = fsm.transition_monoid()
        for outcome in (0, 1):
            assert (
                monoid.maps[monoid.outcome_ids[outcome]]
                == fsm.step_table[outcome]
            ).all()

    @pytest.mark.parametrize("fsm", FSMS, ids=lambda f: f.name)
    def test_compose_table_is_function_composition(self, fsm):
        monoid = fsm.transition_monoid()
        size = len(monoid.maps)
        for a in range(size):
            for b in range(size):
                composed = monoid.maps[monoid.compose(a, b)]
                assert (composed == monoid.maps[b][monoid.maps[a]]).all()

    @pytest.mark.parametrize("fsm", FSMS, ids=lambda f: f.name)
    def test_reduce_matches_sequential_stepping(self, fsm):
        monoid = fsm.transition_monoid()
        rng = np.random.default_rng(3)
        for length in (0, 1, 2, 7, 100, 333):
            outcomes = rng.integers(0, 2, size=length)
            final = monoid.maps[
                monoid.reduce(monoid.outcome_id_sequence(outcomes))
            ]
            expected = np.arange(fsm.n_levels)
            for out in outcomes:
                expected = np.array(
                    [fsm.step(int(level), bool(out)) for level in expected]
                )
            assert (final == expected).all()

    @pytest.mark.parametrize("fsm", FSMS, ids=lambda f: f.name)
    def test_fold_table_matches_per_branch_stepping(self, fsm):
        monoid = fsm.transition_monoid()
        rng = np.random.default_rng(11)
        n_entries = 13  # deliberately not a power of two
        indices = rng.integers(0, n_entries, size=800)
        outcomes = rng.integers(0, 2, size=800).astype(bool)
        table = monoid.fold_table(indices, outcomes, n_entries)
        expected = np.tile(
            np.arange(fsm.n_levels, dtype=np.int8), (n_entries, 1)
        )
        for idx, out in zip(indices, outcomes):
            expected[idx] = fsm.step_table[int(out), expected[idx]]
        assert (table == expected).all()

    def test_fold_table_empty_stream_is_identity(self):
        monoid = textbook_2bit_fsm().transition_monoid()
        table = monoid.fold_table(
            np.array([], dtype=np.int64), np.array([], dtype=bool), 8
        )
        assert (table == np.arange(4, dtype=np.int8)).all()

    def test_monoid_is_cached_per_spec(self):
        assert (
            textbook_2bit_fsm().transition_monoid()
            is textbook_2bit_fsm().transition_monoid()
        )


def _reference_maps(block, core, process):
    """Recompute both compiled PHT maps with the reference loop fold."""
    key = core.mitigations.pht_key(process)
    partition = core.mitigations.partition(process)
    fsm = core.predictor.bimodal.pht.fsm
    n_bimodal = core.predictor.bimodal.pht.n_entries
    bimodal_ref = block.fold_map_reference(
        block._mapped_indices(
            key,
            partition,
            n_bimodal,
            index_hash=core.predictor.bimodal.index_hash,
        ),
        n_bimodal,
        fsm.n_levels,
        fsm.step_table,
    )
    n_gshare = core.predictor.gshare.pht.n_entries
    ghr_len = core.predictor.ghr.length
    trajectory = fold_history(
        block.ghr_trajectory(ghr_len), ghr_len, n_gshare
    )
    mixed = block.addresses ^ trajectory ^ key
    if partition is None:
        gshare_indices = apply_hash(
            core.predictor.gshare.index_hash, mixed, n_gshare
        ).astype(np.int64)
    else:
        gshare_indices = (
            partition.offset + (mixed % partition.size)
        ).astype(np.int64)
    gshare_ref = block.fold_map_reference(
        gshare_indices, n_gshare, fsm.n_levels, fsm.step_table
    )
    return bimodal_ref, gshare_ref


@pytest.mark.parametrize("preset", sorted(PRESETS), ids=str)
@pytest.mark.parametrize("mitigation", ["none", "key", "partition"])
class TestFoldDifferential:
    def _core(self, preset, mitigation):
        core = PhysicalCore(PRESETS[preset]().scaled(16), seed=2)
        if mitigation == "key":
            core.install_mitigation(
                PhtIndexRandomization(np.random.default_rng(9))
            )
        elif mitigation == "partition":
            core.install_mitigation(
                BpuPartitioning.by_process(
                    core.predictor.bimodal.pht.n_entries, n_partitions=4
                )
            )
        return core

    def test_compiled_maps_match_reference(self, preset, mitigation):
        core = self._core(preset, mitigation)
        spy = Process("spy")
        block = RandomizationBlock.generate(17, n_branches=BLOCK_N)
        compiled = block.compile(core, spy)
        bimodal_ref, gshare_ref = _reference_maps(block, core, spy)
        assert (compiled.bimodal_map == bimodal_ref).all()
        assert (compiled.gshare_map == gshare_ref).all()

    def test_entry_fold_matches_reference_row(self, preset, mitigation):
        core = self._core(preset, mitigation)
        spy = Process("spy")
        block = RandomizationBlock.generate(23, n_branches=BLOCK_N)
        bimodal_ref, _ = _reference_maps(block, core, spy)
        key = core.mitigations.pht_key(spy)
        partition = core.mitigations.partition(spy)
        for address in (0x0, 0x30_0006D, 0x12345):
            row = block.entry_fold(core, spy, address)
            index = core.predictor.bimodal.index(address, key, partition)
            assert (row == bimodal_ref[index]).all()


class TestCompileCache:
    def test_identical_compiles_share_one_artifact(self):
        core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        spy = Process("spy")
        block = RandomizationBlock.generate(5, n_branches=500)
        first = block.compile(core, spy)
        second = block.compile(core, spy)
        assert first is second
        info = compile_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_shared_across_cores_of_same_config(self):
        config = PRESETS["haswell"]().scaled(16)
        block = RandomizationBlock.generate(5, n_branches=500)
        spy = Process("spy")
        a = block.compile(PhysicalCore(config, seed=1), spy)
        b = block.compile(PhysicalCore(config, seed=2), spy)
        assert a is b

    def test_key_partition_and_config_invalidate(self):
        block = RandomizationBlock.generate(5, n_branches=500)
        spy = Process("spy")
        plain_core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        plain = block.compile(plain_core, spy)

        keyed_core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        keyed_core.install_mitigation(
            PhtIndexRandomization(np.random.default_rng(4))
        )
        assert block.compile(keyed_core, spy) is not plain

        part_core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        part_core.install_mitigation(
            BpuPartitioning.by_process(
                part_core.predictor.bimodal.pht.n_entries, n_partitions=4
            )
        )
        assert block.compile(part_core, spy) is not plain

        other_config = PhysicalCore(PRESETS["skylake"]().scaled(16), seed=1)
        assert block.compile(other_config, spy) is not plain

    def test_different_blocks_do_not_alias(self):
        core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        spy = Process("spy")
        a = RandomizationBlock.generate(5, n_branches=500).compile(core, spy)
        b = RandomizationBlock.generate(6, n_branches=500).compile(core, spy)
        assert a is not b
        assert compile_cache_info()["misses"] == 2

    def test_cache_is_bounded_lru(self, monkeypatch):
        import repro.core.randomizer as randomizer

        monkeypatch.setattr(randomizer, "COMPILE_CACHE_MAXSIZE", 2)
        core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        spy = Process("spy")
        blocks = [
            RandomizationBlock.generate(seed, n_branches=200)
            for seed in range(3)
        ]
        first = blocks[0].compile(core, spy)
        blocks[1].compile(core, spy)
        blocks[2].compile(core, spy)  # evicts blocks[0]
        assert compile_cache_info()["size"] == 2
        assert blocks[0].compile(core, spy) is not first

    def test_clear_compile_cache(self):
        core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        RandomizationBlock.generate(5, n_branches=200).compile(
            core, Process("spy")
        )
        clear_compile_cache()
        info = compile_cache_info()
        assert info == {
            "hits": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": info["maxsize"],
        }

    def test_tiered_stats_without_a_store(self):
        """With no persistent store every hit is a memory hit."""
        core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        spy = Process("spy")
        block = RandomizationBlock.generate(5, n_branches=200)
        block.compile(core, spy)
        block.compile(core, spy)
        info = compile_cache_info()
        assert info["memory_hits"] == 1
        assert info["disk_hits"] == 0
        assert info["hits"] == 1 and info["misses"] == 1

    def test_cached_apply_still_reproducible(self):
        """A cache-shared artifact behaves identically on reuse."""
        core = PhysicalCore(PRESETS["haswell"]().scaled(16), seed=1)
        spy = Process("spy")
        block = RandomizationBlock.generate(5, n_branches=500)
        compiled = block.compile(core, spy)
        checkpoint = core.checkpoint()
        compiled.apply(core, spy)
        first = core.predictor.bimodal.pht.snapshot()
        core.restore(checkpoint)
        again = block.compile(core, spy)
        assert again is compiled
        again.apply(core, spy)
        assert (core.predictor.bimodal.pht.snapshot() == first).all()
