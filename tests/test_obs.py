"""Observability layer: tracing, metrics, manifests, exporters.

The load-bearing property is the last class: a fully-traced run must be
bit-identical to an untraced run — the tracer only reads state, so
enabling it can never change what the simulator computes.
"""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro import obs
from repro.core.calibration import assess_block, assess_block_batch, find_block
from repro.core.covert import CovertChannel
from repro.core.patterns import DecodedState
from repro.core.pht_map import scan_states
from repro.core.randomizer import RandomizationBlock
from repro.bpu import haswell
from repro.cpu import PhysicalCore, Process
from repro.cpu.timing import TimingModel
from repro.mitigations import NoisyPerformanceCounters
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from tests.conftest import SMALL_BLOCK


@pytest.fixture(autouse=True)
def _clean_tracer():
    """No test may leak an enabled tracer or fallback counts."""
    obs.disable_tracing()
    obs.reset_scalar_fallbacks()
    yield
    obs.disable_tracing()
    obs.reset_scalar_fallbacks()


class TestTracer:
    def test_ring_buffer_bounds_retention(self):
        tracer = Tracer(capacity=10)
        for i in range(25):
            tracer.emit("branch", "execute", i=i)
        assert len(tracer) == 10
        assert tracer.emitted == 25
        assert tracer.dropped == 15
        # Oldest events fell off; the newest survive in order.
        assert [e.args["i"] for e in tracer.events()] == list(range(15, 25))

    def test_category_filtering(self):
        tracer = Tracer(categories={"branch", "pool"})
        tracer.emit("branch", "execute")
        tracer.emit("covert", "bit")
        tracer.emit("pool", "dispatch")
        assert tracer.emitted == 2
        assert tracer.category_counts == {"branch": 1, "pool": 1}
        assert tracer.wants("branch") and not tracer.wants("covert")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            Tracer(categories={"branch", "typo"})

    def test_enable_disable_roundtrip(self):
        assert obs.get_tracer() is None
        tracer = obs.enable_tracing(capacity=16)
        assert obs.get_tracer() is tracer
        assert obs.disable_tracing() is tracer
        assert obs.get_tracer() is None

    def test_tracing_context_restores_previous(self):
        outer = obs.enable_tracing()
        with obs.tracing() as inner:
            assert obs.get_tracer() is inner
        assert obs.get_tracer() is outer

    def test_events_carry_sequence_and_level(self):
        tracer = Tracer()
        tracer.emit("fallback", "scalar_engine", level="warning", engine="x")
        (event,) = tracer.events()
        assert event.seq == 0
        assert event.level == "warning"
        assert event.to_dict()["cat"] == "fallback"


class TestMetrics:
    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "h", labels=("engine",))
        counter.inc(engine="batch")
        counter.inc(3, engine="scalar")
        assert counter.value(engine="batch") == 1
        assert counter.value(engine="scalar") == 3

    def test_label_hygiene_enforced(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", labels=("engine",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()  # missing the declared label
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(engine="x", extra="y")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("hits", labels=("other",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("hits", labels=("engine",))
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("n")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_buckets_and_stats(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        (series,) = hist.series().values()
        assert series["counts"] == [1, 1, 1]  # <=1, <=10, +Inf
        assert series["count"] == 3
        assert series["min"] == 0.5 and series["max"] == 50.0

    def test_snapshot_diff(self):
        registry = MetricsRegistry()
        counter = registry.counter("n", labels=("k",))
        counter.inc(2, k="a")
        before = registry.snapshot()
        counter.inc(5, k="a")
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta["n"]["series"]['{k="a"}'] == 5

    def test_render_text_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("n", "things", labels=("k",)).inc(k="a")
        registry.histogram("lat").observe(0.5)
        text = registry.render_text()
        assert "# TYPE n counter" in text
        assert 'n{k="a"} 1' in text
        assert "lat_count 1" in text

    def test_render_text_parses_as_exposition_format(self):
        """Round-trip through a strict line parser of the text format.

        Checks the two properties real scrapers reject on: the payload
        ends in a newline, and every histogram exposes a cumulative
        ``_bucket`` series whose ``le="+Inf"`` sample equals ``_count``.
        """
        registry = MetricsRegistry()
        registry.counter("n", "things", labels=("k",)).inc(k="a")
        hist = registry.histogram(
            "lat", labels=("engine",), buckets=(1.0, 10.0)
        )
        for value in (0.5, 5.0, 50.0):
            hist.observe(value, engine="batch")
        text = registry.render_text()
        assert text.endswith("\n")

        sample_re = re.compile(
            r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
            r'(?:\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*)\})?'
            r' (?P<value>\+Inf|-?[0-9.eE+-]+)$'
        )
        samples = {}
        for line in text[:-1].split("\n"):
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:]", line)
                continue
            match = sample_re.match(line)
            assert match, f"unparseable sample line: {line!r}"
            labels = dict(
                pair.split("=", 1)
                for pair in (match.group("labels") or "").split(",")
                if pair
            )
            samples[(match.group("name"), tuple(sorted(labels.items())))] = (
                float(match.group("value"))
            )

        # Cumulative buckets, +Inf present and equal to _count.
        base = (("engine", '"batch"'),)
        bucket = lambda le: samples[
            ("lat_bucket", tuple(sorted(base + (("le", f'"{le}"'),))))
        ]
        assert bucket("1") == 1.0
        assert bucket("10") == 2.0
        assert bucket("+Inf") == 3.0
        assert bucket("+Inf") == samples[("lat_count", base)]
        assert samples[("lat_sum", base)] == pytest.approx(55.5)


class TestExporters:
    def _traced_events(self):
        tracer = Tracer()
        tracer.emit("branch", "execute", cycle=10, pid=1, dur=17, taken=True)
        tracer.emit("pool", "dispatch", workers=2)
        tracer.emit("fallback", "scalar_engine", level="warning", engine="e")
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._traced_events()
        path = obs.write_jsonl(tracer, tmp_path / "t.jsonl", meta={"run": "x"})
        meta, events = obs.read_jsonl(path)
        assert meta["events"] == 3 and meta["run"] == "x"
        assert [e["name"] for e in events] == [
            "execute", "dispatch", "scalar_engine",
        ]
        assert events[0]["args"]["dur"] == 17

    def test_chrome_trace_is_valid_json(self, tmp_path):
        tracer = self._traced_events()
        path = obs.write_chrome_trace(tracer.events(), tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        records = document["traceEvents"]
        assert records[0]["ph"] == "M"  # process-name metadata
        complete = next(r for r in records if r["name"] == "branch.execute")
        assert complete["ph"] == "X" and complete["dur"] == 17
        assert complete["ts"] == 10
        instant = next(r for r in records if r["name"] == "pool.dispatch")
        assert instant["ph"] == "i"
        # Timestampless events inherit the previous timestamp.
        assert instant["ts"] == 10

    def test_summary_counts_and_warnings(self):
        tracer = self._traced_events()
        text = obs.summarize([e.to_dict() for e in tracer.events()])
        assert "events retained : 3" in text
        assert "warnings        : 1" in text
        assert "fallback.scalar_engine" in text


class TestManifest:
    def test_capture_records_env_and_digest(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        monkeypatch.delenv("REPRO_TRIAL_WORKERS", raising=False)
        manifest = obs.RunManifest.capture("fig4", preset="skylake", seed=7)
        manifest.add_result("fig4.txt", "hello\n")
        assert manifest.env == {
            "REPRO_BENCH_SCALE": "2.5",
            "REPRO_TRIAL_WORKERS": None,
        }
        assert manifest.results["fig4.txt"] == obs.sha256_text("hello\n")
        path = manifest.write(tmp_path / "fig4.manifest.json")
        loaded = obs.RunManifest.load(path)
        assert loaded == manifest

    def test_git_revision_shape(self):
        revision = obs.git_revision()
        if revision is not None:  # repo may be absent in some environments
            assert set(revision) == {"sha", "dirty"}
            assert len(revision["sha"]) == 40


class TestScalarFallbackSurfacing:
    def test_scan_states_reports_engine_and_fallback(self, haswell_core, spy):
        compiled = RandomizationBlock.generate(
            3, n_branches=SMALL_BLOCK
        ).compile(haswell_core, spy)
        addresses = list(range(0x300000, 0x300010))
        clean = scan_states(haswell_core, spy, addresses, compiled)
        assert clean.engine == "batch" and clean.scalar_fallbacks == 0

        haswell_core.install_mitigation(NoisyPerformanceCounters())
        with obs.tracing(collect_metrics=True) as tracer:
            noisy = scan_states(haswell_core, spy, addresses, compiled)
        assert noisy.engine == "reference"
        assert noisy.scalar_fallbacks == 1
        assert obs.scalar_fallback_counts() == {"batch_probe": 1}
        warning = [e for e in tracer.events() if e.level == "warning"]
        assert warning and warning[0].args["engine"] == "batch_probe"
        assert (
            tracer.metrics.counter(
                "repro_scalar_fallbacks_total", labels=("engine",)
            ).value(engine="batch_probe")
            == 1
        )
        # The scan result is still a plain list to every existing caller.
        assert isinstance(noisy, list)
        assert noisy == list(noisy)
        assert len(noisy) == len(addresses)

    def test_assess_block_batch_fallback_counted(self, haswell_core, spy):
        compiled = RandomizationBlock.generate(
            3, n_branches=SMALL_BLOCK
        ).compile(haswell_core, spy)
        haswell_core.install_mitigation(NoisyPerformanceCounters())
        assess_block_batch(
            haswell_core, spy, compiled, 0x300000, repetitions=3
        )
        assert obs.scalar_fallback_counts() == {"calibration_batch": 1}

    def test_find_block_with_stats(self, haswell_core, spy):
        block, stats = find_block(
            haswell_core,
            spy,
            0x300000,
            DecodedState.SN,
            block_branches=SMALL_BLOCK,
            repetitions=6,
            with_stats=True,
        )
        assert block.block.seed >= 0
        assert stats.candidates >= stats.assessed >= 1
        assert stats.scalar_fallbacks == 0
        assert not stats.scalar_engine_forced
        assert stats.workers == 1

    def test_find_block_with_stats_scalar_forced(self, spy):
        # A TimingModel *subclass* forces the serial search onto the
        # scalar engine (its draw pattern can't be replayed) without
        # perturbing observations, so the search still converges.
        class _CustomTiming(TimingModel):
            pass

        from tests.conftest import TEST_SCALE

        core = PhysicalCore(
            haswell().scaled(TEST_SCALE), timing=_CustomTiming(), seed=7
        )
        block, stats = find_block(
            core,
            spy,
            0x300000,
            DecodedState.SN,
            block_branches=SMALL_BLOCK,
            repetitions=6,
            with_stats=True,
        )
        assert stats.scalar_engine_forced
        assert stats.scalar_fallbacks == stats.assessed > 0

    def test_find_block_default_return_unchanged(self, haswell_core, spy):
        block = find_block(
            haswell_core,
            spy,
            0x300000,
            DecodedState.SN,
            block_branches=SMALL_BLOCK,
            repetitions=6,
        )
        assert not isinstance(block, tuple)


def _channel(core: PhysicalCore) -> CovertChannel:
    from repro.core.covert import CovertConfig

    # Fixed pids so the traced and untraced runs build identical cores
    # (the per-process counter files key on pid).
    return CovertChannel.for_processes(
        core,
        Process("trojan", pid=901),
        Process("spy", pid=902),
        config=CovertConfig(block_branches=SMALL_BLOCK),
    )


class TestTracedRunsAreBitIdentical:
    """Tracing only observes: traced == untraced, state and all."""

    def test_assess_block_identical(self, small_config, spy):
        """Across all three presets (the ``small_config`` matrix)."""
        plain_core = PhysicalCore(small_config, seed=7)
        traced_core = PhysicalCore(small_config, seed=7)
        compiled_plain = RandomizationBlock.generate(
            5, n_branches=SMALL_BLOCK
        ).compile(plain_core, spy)
        compiled_traced = RandomizationBlock.generate(
            5, n_branches=SMALL_BLOCK
        ).compile(traced_core, spy)

        plain = assess_block(
            plain_core, spy, compiled_plain, 0x300000, repetitions=8
        )
        with obs.tracing(collect_metrics=True) as tracer:
            traced = assess_block(
                traced_core, spy, compiled_traced, 0x300000, repetitions=8
            )
        assert tracer.emitted > 0
        assert traced == plain
        assert (
            traced_core.rng.bit_generator.state
            == plain_core.rng.bit_generator.state
        )
        _assert_same_core_state(plain_core, traced_core)

    def test_covert_transmit_identical(self, haswell_core):
        plain_core = haswell_core
        traced_core = PhysicalCore(plain_core.config, seed=7)
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        plain = _channel(plain_core).transmit(bits)
        with obs.tracing() as tracer:
            traced = _channel(traced_core).transmit(bits)
        assert traced == plain
        assert (
            traced_core.rng.bit_generator.state
            == plain_core.rng.bit_generator.state
        )
        _assert_same_core_state(plain_core, traced_core)
        assert tracer.category_counts.get("covert", 0) == len(bits) + 1

    def test_covert_trace_exports_to_chrome(self, haswell_core, tmp_path):
        with obs.tracing() as tracer:
            _channel(haswell_core).transmit([1, 0, 1])
        path = obs.write_chrome_trace(tracer.events(), tmp_path / "c.json")
        document = json.loads(path.read_text())
        names = {r["name"] for r in document["traceEvents"]}
        assert "covert.transmit" in names and "branch.execute" in names


def _assert_same_core_state(a: PhysicalCore, b: PhysicalCore) -> None:
    snap_a = a.checkpoint(full=True)
    snap_b = b.checkpoint(full=True)
    assert a.clock.now == b.clock.now
    _assert_same_tree(snap_a, snap_b)


def _assert_same_tree(a, b) -> None:
    assert type(a) is type(b) or (
        isinstance(a, (tuple, list)) and isinstance(b, (tuple, list))
    )
    if isinstance(a, dict):
        assert a.keys() == b.keys()
        for key in a:
            _assert_same_tree(a[key], b[key])
    elif isinstance(a, (tuple, list)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_same_tree(x, y)
    elif isinstance(a, np.ndarray):
        assert np.array_equal(a, b)
    else:
        assert a == b
