"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_preset_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["covert", "--preset", "zen4"])

    def test_defaults(self):
        args = build_parser().parse_args(["covert"])
        assert args.preset == "skylake"
        assert args.setting == "isolated"
        assert args.bits == 500
        assert args.trace is None
        assert args.metrics is False

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_summary_takes_a_file(self):
        args = build_parser().parse_args(["trace", "summary", "run.jsonl"])
        assert args.trace_command == "summary"
        assert args.trace_file == "run.jsonl"

    def test_serve_port_defaults_to_spool_only(self):
        args = build_parser().parse_args(["serve", "--root", "svc"])
        assert args.port is None
        assert args.lease_seconds == 30.0

    def test_serve_accepts_coordinator_flags(self):
        args = build_parser().parse_args(
            ["serve", "--root", "svc", "--port", "0", "--lease-seconds", "5"]
        )
        assert args.port == 0
        assert args.lease_seconds == 5.0

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_defaults(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "http://127.0.0.1:8763"]
        )
        assert args.connect == "http://127.0.0.1:8763"
        assert args.root is None
        assert args.once is False
        assert args.retries == 5
        assert args.worker_id is None


class TestCommands:
    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "skylake" in out and "sandy_bridge" in out
        assert "16384" in out

    def test_covert_silent(self, capsys):
        assert (
            main(
                [
                    "covert",
                    "--bits", "60",
                    "--setting", "silent",
                    "--preset", "sandy_bridge",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "error rate 0.00%" in out

    def test_attack(self, capsys):
        assert (
            main(
                [
                    "attack",
                    "--bits", "24",
                    "--setting", "silent",
                    "--preset", "haswell",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "24/24 bits correct" in out

    def test_fsm_table_skylake_footnote(self, capsys):
        assert main(["fsm-table", "--preset", "skylake"]) == 0
        lines = capsys.readouterr().out.splitlines()
        row = next(
            l for l in lines if l.startswith("TTT") and " N " in l and "NN" in l
        )
        assert row.rstrip().endswith("MM")  # footnote 1

    def test_fsm_table_haswell_textbook(self, capsys):
        assert main(["fsm-table", "--preset", "haswell"]) == 0
        lines = capsys.readouterr().out.splitlines()
        row = next(
            l for l in lines if l.startswith("TTT") and " N " in l and "NN" in l
        )
        assert row.rstrip().endswith("MH")

    def test_poison(self, capsys):
        assert main(["poison", "--rounds", "40"]) == 0
        out = capsys.readouterr().out
        assert "poisoned" in out


class TestObservabilityFlags:
    COVERT = [
        "covert",
        "--bits", "20",
        "--setting", "silent",
        "--preset", "sandy_bridge",
    ]

    def test_covert_traced_run_writes_trace_and_manifest(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        assert main(self.COVERT + ["--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "error rate 0.00%" in out  # result unchanged by tracing
        assert trace.exists()
        manifest = json.loads(
            (tmp_path / "run.manifest.json").read_text()
        )
        assert manifest["name"] == "covert"
        assert manifest["preset"] == "sandy_bridge"
        assert manifest["source"] == "run"
        assert "run.jsonl" in manifest["results"]

    def test_covert_metrics_flag_prints_families(self, capsys):
        assert main(self.COVERT + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "repro_branches_total" in out
        assert "repro_covert_bits_total" in out

    def test_attack_traced(self, tmp_path, capsys):
        trace = tmp_path / "attack.jsonl"
        assert (
            main(
                [
                    "attack",
                    "--bits", "8",
                    "--setting", "silent",
                    "--preset", "haswell",
                    "--trace", str(trace),
                ]
            )
            == 0
        )
        assert "8/8 bits correct" in capsys.readouterr().out
        assert trace.exists()

    def test_trace_summary_and_export(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(self.COVERT + ["--trace", str(trace)])
        capsys.readouterr()

        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "events retained" in out
        assert "covert" in out

        assert main(["trace", "export", str(trace)]) == 0
        capsys.readouterr()
        document = json.loads((tmp_path / "run.chrome.json").read_text())
        assert document["traceEvents"]
        phases = {record["ph"] for record in document["traceEvents"]}
        assert phases <= {"M", "X", "i"}

    def test_tracing_disabled_after_traced_run(self, tmp_path):
        from repro import obs

        main(self.COVERT + ["--trace", str(tmp_path / "t.jsonl")])
        assert obs.get_tracer() is None
