"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_preset_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["covert", "--preset", "zen4"])

    def test_defaults(self):
        args = build_parser().parse_args(["covert"])
        assert args.preset == "skylake"
        assert args.setting == "isolated"
        assert args.bits == 500


class TestCommands:
    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "skylake" in out and "sandy_bridge" in out
        assert "16384" in out

    def test_covert_silent(self, capsys):
        assert (
            main(
                [
                    "covert",
                    "--bits", "60",
                    "--setting", "silent",
                    "--preset", "sandy_bridge",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "error rate 0.00%" in out

    def test_attack(self, capsys):
        assert (
            main(
                [
                    "attack",
                    "--bits", "24",
                    "--setting", "silent",
                    "--preset", "haswell",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "24/24 bits correct" in out

    def test_fsm_table_skylake_footnote(self, capsys):
        assert main(["fsm-table", "--preset", "skylake"]) == 0
        lines = capsys.readouterr().out.splitlines()
        row = next(
            l for l in lines if l.startswith("TTT") and " N " in l and "NN" in l
        )
        assert row.rstrip().endswith("MM")  # footnote 1

    def test_fsm_table_haswell_textbook(self, capsys):
        assert main(["fsm-table", "--preset", "haswell"]) == 0
        lines = capsys.readouterr().out.splitlines()
        row = next(
            l for l in lines if l.startswith("TTT") and " N " in l and "NN" in l
        )
        assert row.rstrip().endswith("MH")

    def test_poison(self, capsys):
        assert main(["poison", "--rounds", "40"]) == 0
        out = capsys.readouterr().out
        assert "poisoned" in out
