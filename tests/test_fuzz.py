"""The reverse-engineering fuzzer (:mod:`repro.fuzz`).

Coverage layers, cheapest first: generator/oracle determinism, the
bank-vs-scalar simulator differential, the battery's dimension
separation, the closed-loop self-rediscovery of every zoo preset, and
the service-tenancy contracts (worker-count invariance, warm-store
zero-dispatch reruns, partial-run resume) the acceptance criteria pin.
"""

import json

import numpy as np
import pytest

from repro.bpu.hashes import fold_history, history_fold_width
from repro.bpu.presets import PRESETS
from repro.fuzz.campaign import (
    FuzzVerdict,
    plan_generation,
    run_fuzz,
    true_hypothesis,
)
from repro.fuzz.generate import (
    CANDIDATE_HISTORY_BITS,
    CANDIDATE_TABLE_SIZES,
    BranchProgram,
    battery_descriptors,
    program_from_descriptor,
    random_descriptor,
)
from repro.fuzz.infer import (
    FSM_VARIANTS,
    SELECTOR_INITIALS,
    Hypothesis,
    HypothesisBank,
    HypothesisLattice,
    default_lattice,
    simulate_program,
)
from repro.fuzz.oracle import PresetOracle
from repro.service.aggregate import RecordListAggregate
from repro.service.campaign import CampaignSpec
from repro.service.scheduler import CampaignService

INTEL_PRESETS = ("skylake", "haswell", "sandy_bridge")


class TestGenerate:
    def test_battery_is_deterministic(self):
        assert battery_descriptors(7) == battery_descriptors(7)
        assert battery_descriptors(7) != battery_descriptors(8)

    def test_battery_descriptors_are_json_plain(self):
        descs = battery_descriptors(0)
        assert json.loads(json.dumps(descs)) == descs

    def test_decoder_is_pure(self):
        desc = {"family": "collision", "train": 10, "probe": 20}
        assert program_from_descriptor(desc) == program_from_descriptor(desc)

    def test_collision_family_shape(self):
        program = program_from_descriptor(
            {"family": "collision", "train": 0x100, "probe": 0x200}
        )
        assert program.addresses == (0x100, 0x100, 0x100, 0x200)
        assert program.outcomes == (True,) * 4
        assert program.observed == (3,)

    def test_history_family_shape(self):
        program = program_from_descriptor(
            {"family": "history", "address": 5, "period": 4, "repeats": 2}
        )
        assert program.outcomes == (True, True, True, False) * 2
        assert program.observed == tuple(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchProgram(addresses=(1,), outcomes=(), observed=())
        with pytest.raises(ValueError):
            BranchProgram(
                addresses=(1, 2), outcomes=(True, True), observed=(1, 0)
            )
        with pytest.raises(ValueError):
            program_from_descriptor({"family": "nope"})
        with pytest.raises(ValueError):
            program_from_descriptor(
                {"family": "fsm", "address": 1, "taken": 0, "not_taken": 1}
            )

    def test_random_descriptor_reproducible(self):
        a = [random_descriptor(np.random.default_rng(3)) for _ in range(5)]
        b = [random_descriptor(np.random.default_rng(3)) for _ in range(5)]
        assert a == b

    def test_random_descriptors_decode(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            program = program_from_descriptor(random_descriptor(rng))
            assert len(program) >= 1


class TestOracle:
    def test_fresh_predictor_per_run(self):
        oracle = PresetOracle("haswell")
        program = program_from_descriptor(
            {"family": "fsm", "address": 0x999, "taken": 3, "not_taken": 3}
        )
        assert oracle.run(program) == oracle.run(program)

    def test_only_observed_bits_cross(self):
        oracle = PresetOracle("sandy_bridge")
        program = program_from_descriptor(
            {"family": "collision", "train": 0x10, "probe": 0x20}
        )
        assert len(oracle.run(program)) == 1

    def test_unknown_preset_fails_helpfully(self):
        with pytest.raises(KeyError, match="valid presets"):
            PresetOracle("sklake")


class TestFoldHistory:
    def test_identity_when_history_fits(self):
        assert fold_history(0b1011, 12, 4096) == 0b1011
        assert history_fold_width(4096) == 12

    def test_chunked_xor(self):
        # 16-bit history into a 14-bit index: top 2 bits fold onto the
        # low end.  h = high2 || low14  ->  low14 ^ high2.
        low, high = 0x1ABC, 0b10
        h = (high << 14) | low
        assert fold_history(h, 16, 16384) == low ^ high

    def test_elementwise_on_arrays(self):
        values = np.array([0, 1, (1 << 20) | 5], dtype=np.int64)
        folded = fold_history(values, 24, 16384)
        expected = [fold_history(int(v), 24, 16384) for v in values]
        assert folded.tolist() == expected


class TestSimulatorDifferential:
    """Bank signatures == scalar reference, bit for bit."""

    def test_battery_spot_check(self):
        lattice = default_lattice()
        bank = HypothesisBank(lattice)
        rng = np.random.default_rng(5)
        picks = rng.choice(len(lattice), size=4, replace=False)
        programs = [
            program_from_descriptor(d) for d in battery_descriptors(0)
        ]
        for program in programs:
            for bias in SELECTOR_INITIALS:
                signatures = bank.signatures(program, bias)
                for j in picks:
                    reference = simulate_program(program, lattice[j], bias)
                    assert (
                        tuple(bool(b) for b in signatures[j]) == reference
                    ), (program, lattice[j], bias)

    def test_random_program_spot_check(self):
        lattice = default_lattice()
        bank = HypothesisBank(lattice)
        rng = np.random.default_rng(17)
        for _ in range(6):
            program = program_from_descriptor(random_descriptor(rng))
            signatures = bank.signatures(program, 1)
            j = int(rng.integers(0, len(lattice)))
            assert tuple(bool(b) for b in signatures[j]) == simulate_program(
                program, lattice[j], 1
            )


class TestBatterySeparation:
    def test_collisions_separate_all_size_hash_classes(self):
        """The 8 (size, hash) classes get pairwise-distinct agreed
        signatures from the battery's collision programs alone."""
        points = [
            Hypothesis(size, index_hash, "textbook", 12)
            for size in CANDIDATE_TABLE_SIZES
            for index_hash in ("mod", "fold")
        ]
        lattice = HypothesisLattice(points)
        keys = [[] for _ in points]
        for desc in battery_descriptors(0):
            if desc["family"] != "collision":
                continue
            program = program_from_descriptor(desc)
            signatures, mask = lattice._masked(program)
            for j in range(len(points)):
                keys[j].append(
                    tuple(
                        int(s) if m else 2
                        for s, m in zip(signatures[j], mask[j])
                    )
                )
        assert len({tuple(k) for k in keys}) == len(points)

    def test_history_periods_separate_ghr_classes(self):
        """With folded history, the period sweep splits every candidate
        GHR length (this was architecturally impossible pre-fold)."""
        points = [
            Hypothesis(16384, "mod", "textbook", bits)
            for bits in CANDIDATE_HISTORY_BITS
        ]
        lattice = HypothesisLattice(points)
        keys = [[] for _ in points]
        for desc in battery_descriptors(0):
            if desc["family"] != "history":
                continue
            program = program_from_descriptor(desc)
            signatures, mask = lattice._masked(program)
            for j in range(len(points)):
                keys[j].append(
                    tuple(
                        int(s) if m else 2
                        for s, m in zip(signatures[j], mask[j])
                    )
                )
        assert len({tuple(k) for k in keys}) == len(points)


class TestSelfRediscovery:
    """The acceptance criterion: geometry recovered from probes alone."""

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_full_zoo_converges_to_truth(self, preset):
        verdict = run_fuzz(preset, seed=0, generations=6)
        assert verdict.matches_truth(), verdict.survivors
        assert verdict.survivors[0] == true_hypothesis(preset)

    def test_truth_never_eliminated_midway(self):
        lattice = HypothesisLattice()
        oracle = PresetOracle("skylake")
        truth = true_hypothesis("skylake")
        truth_index = lattice.bank.hypotheses.index(truth)
        for desc in battery_descriptors(0):
            program = program_from_descriptor(desc)
            lattice.observe(program, oracle.run(program))
            assert lattice.alive[truth_index]

    def test_verdict_digest_excludes_scheduling(self):
        a = run_fuzz("sandy_bridge", seed=0)
        forged = FuzzVerdict(
            preset=a.preset,
            seed=a.seed,
            scale=a.scale,
            generations_run=a.generations_run,
            n_trials=a.n_trials,
            survivors=a.survivors,
            resumed_shards=a.resumed_shards + 3,
            cached_shards=a.cached_shards + 1,
        )
        assert forged.digest() == a.digest()

    def test_true_hypothesis_rejects_foreign_fsm(self):
        import dataclasses

        from repro.bpu import presets as presets_mod
        from repro.bpu.fsm import FSMSpec, textbook_2bit_fsm

        def weird_fsm():
            spec = textbook_2bit_fsm()
            return FSMSpec(
                name="weird",
                n_levels=spec.n_levels,
                taken_threshold=spec.taken_threshold,
            )

        config = dataclasses.replace(
            presets_mod.haswell(), fsm_factory=weird_fsm
        )
        presets_mod.PRESETS["_weird"] = lambda: config
        try:
            with pytest.raises(ValueError, match="outside the fuzz lattice"):
                true_hypothesis("_weird")
        finally:
            del presets_mod.PRESETS["_weird"]


class TestPlanGeneration:
    def test_generation_zero_is_the_battery(self):
        lattice = HypothesisLattice()
        assert plan_generation(lattice, 0, 4) == battery_descriptors(4)

    def test_refinement_is_deterministic_and_ranked(self):
        lattice = HypothesisLattice()
        a = plan_generation(lattice, 1, 4)
        b = plan_generation(lattice, 1, 4)
        assert a == b
        assert len(a) == 8
        assert a != plan_generation(lattice, 2, 4)
        scores = [
            lattice.partition_score(program_from_descriptor(d)) for d in a
        ]
        assert scores == sorted(scores, reverse=True)


class TestServiceTenancy:
    """Fuzz generations are campaign-service tenants, with the full
    determinism contract: worker invariance, store serving, resume."""

    def test_worker_count_invariance(self):
        serial = run_fuzz("sandy_bridge", seed=0, workers=1)
        forked = run_fuzz("sandy_bridge", seed=0, workers=2)
        assert serial.digest() == forked.digest()
        assert serial.survivors == forked.survivors

    def test_warm_store_rerun_dispatches_zero_trials(self, tmp_path):
        from repro.store import ContentStore

        store = ContentStore(tmp_path / "store")
        cold = run_fuzz(
            "sandy_bridge",
            seed=0,
            store=store,
            checkpoint_dir=tmp_path / "ck1",
        )
        dispatched = []
        warm = run_fuzz(
            "sandy_bridge",
            seed=0,
            store=store,
            checkpoint_dir=tmp_path / "ck2",
            pre_trial=dispatched.append,
        )
        assert dispatched == []
        assert warm.cached_shards > 0
        assert warm.digest() == cold.digest()

    def test_killed_generation_resumes_to_same_digest(self, tmp_path):
        class Killed(RuntimeError):
            pass

        calls = []

        def die_midway(index):
            calls.append(index)
            if len(calls) == 9:
                raise Killed()

        with pytest.raises(Killed):
            run_fuzz(
                "sandy_bridge",
                seed=0,
                checkpoint_dir=tmp_path / "ck",
                workers=1,
                pre_trial=die_midway,
            )
        resumed = run_fuzz(
            "sandy_bridge",
            seed=0,
            checkpoint_dir=tmp_path / "ck",
            workers=1,
        )
        assert resumed.resumed_shards > 0
        reference = run_fuzz("sandy_bridge", seed=0)
        assert resumed.digest() == reference.digest()

    def test_fuzz_spec_round_trips_params(self):
        descriptors = battery_descriptors(0)[:4]
        spec = CampaignSpec(
            name="fuzz-rt",
            tenant="fuzz",
            preset="sandy_bridge",
            n_blocks=len(descriptors),
            shards=2,
            workload="fuzz",
            params=json.dumps({"descriptors": descriptors}, sort_keys=True),
        )
        again = CampaignSpec.from_json(spec.to_json())
        assert again.params_dict()["descriptors"] == descriptors

    def test_shard_layout_does_not_change_digest(self):
        descriptors = battery_descriptors(0)[:6]

        def digest_with(shards):
            service = CampaignService(workers=1)
            spec = CampaignSpec(
                name="fuzz-shards",
                tenant="fuzz",
                preset="sandy_bridge",
                n_blocks=len(descriptors),
                shards=shards,
                workload="fuzz",
                params=json.dumps(
                    {"descriptors": descriptors}, sort_keys=True
                ),
            )
            cid = service.submit(spec)
            service.run_until_complete()
            return service.campaign(cid).aggregate().digest()

        assert digest_with(1) == digest_with(3)


class TestRecordListAggregate:
    def _record(self, index):
        return {"index": index, "descriptor": {"x": index}, "hits": [1]}

    def test_records_sorted_by_index(self):
        agg = RecordListAggregate()
        for index in (2, 0, 1):
            agg.add_trial(self._record(index))
        assert [r["index"] for r in agg.records()] == [0, 1, 2]

    def test_duplicate_index_rejected(self):
        agg = RecordListAggregate()
        agg.add_trial(self._record(0))
        with pytest.raises(ValueError, match="duplicate trial index"):
            agg.add_trial(self._record(0))

    def test_merge_equals_serial_fold(self):
        serial = RecordListAggregate()
        left, right = RecordListAggregate(), RecordListAggregate()
        for index in range(6):
            serial.add_trial(self._record(index))
            (left if index < 3 else right).add_trial(self._record(index))
        merged = RecordListAggregate.merged([left, right])
        assert merged.digest() == serial.digest()

    def test_merge_rejects_overlap(self):
        left, right = RecordListAggregate(), RecordListAggregate()
        left.add_trial(self._record(0))
        right.add_trial(self._record(0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_state_round_trip_preserves_digest(self):
        agg = RecordListAggregate()
        for index in range(4):
            agg.add_trial(self._record(index))
        clone = RecordListAggregate.from_state(agg.to_state())
        assert clone.digest() == agg.digest()
        assert clone.records() == agg.records()


class TestCli:
    def test_fuzz_verb_expect_truth(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "fuzz",
                    "--preset",
                    "sandy_bridge",
                    "--expect-truth",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "verdict digest:" in out
        assert "table=4096" in out
