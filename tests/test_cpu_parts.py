"""Clock, TSC, counters, timing model, process."""

import numpy as np
import pytest

from repro.cpu.clock import CycleClock
from repro.cpu.counters import CounterKind, CounterSample, PerformanceCounters
from repro.cpu.process import Process
from repro.cpu.timing import TimingModel
from repro.cpu.tsc import TimestampCounter


class TestClock:
    def test_starts_at_zero(self):
        assert CycleClock().now == 0

    def test_advance(self):
        clock = CycleClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_no_negative_time(self):
        with pytest.raises(ValueError):
            CycleClock().advance(-1)
        with pytest.raises(ValueError):
            CycleClock(start=-5)

    def test_snapshot_restore(self):
        clock = CycleClock()
        clock.advance(100)
        snap = clock.snapshot()
        clock.advance(50)
        clock.restore(snap)
        assert clock.now == 100


class TestTSC:
    def test_read_returns_current_time(self):
        clock = CycleClock(start=42)
        tsc = TimestampCounter(clock)
        assert tsc.read() == 42

    def test_read_overhead_advances_clock(self):
        clock = CycleClock()
        tsc = TimestampCounter(clock, read_overhead=30)
        tsc.read()
        assert clock.now == 30

    def test_time_brackets_a_callable(self):
        clock = CycleClock()
        tsc = TimestampCounter(clock)
        result, cycles = tsc.time(lambda: clock.advance(77) and "done")
        assert cycles == 77

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            TimestampCounter(CycleClock(), read_overhead=-1)

    def test_noop_costs_exactly_two_read_overheads(self):
        """Both bracketing reads charge their overhead symmetrically."""
        clock = CycleClock()
        tsc = TimestampCounter(clock, read_overhead=30)
        result, cycles = tsc.time(lambda: "noop")
        assert result == "noop"
        assert cycles == 2 * tsc.read_overhead

    def test_timed_region_includes_both_read_overheads(self):
        clock = CycleClock()
        tsc = TimestampCounter(clock, read_overhead=7)
        _, cycles = tsc.time(clock.advance, 100)
        assert cycles == 100 + 2 * 7


class TestCounters:
    def test_increment_and_read(self):
        counters = PerformanceCounters()
        counters.increment(CounterKind.BRANCHES)
        counters.increment(CounterKind.BRANCH_MISSES, 3)
        assert counters.read(CounterKind.BRANCHES) == 1
        assert counters.read(CounterKind.BRANCH_MISSES) == 3

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            PerformanceCounters().increment(CounterKind.BRANCHES, -1)

    def test_sample_delta(self):
        counters = PerformanceCounters()
        before = counters.sample()
        counters.increment(CounterKind.BRANCHES, 5)
        counters.increment(CounterKind.CYCLES, 100)
        delta = counters.sample().delta(before)
        assert delta == CounterSample(branches=5, branch_misses=0, cycles=100)

    def test_reset(self):
        counters = PerformanceCounters()
        counters.increment(CounterKind.CYCLES, 9)
        counters.reset()
        assert counters.read(CounterKind.CYCLES) == 0

    def test_snapshot_restore(self):
        counters = PerformanceCounters()
        counters.increment(CounterKind.BRANCHES, 2)
        snap = counters.snapshot()
        counters.increment(CounterKind.BRANCHES, 2)
        counters.restore(snap)
        assert counters.read(CounterKind.BRANCHES) == 2


class TestTimingModel:
    def setup_method(self):
        self.timing = TimingModel()
        self.rng = np.random.default_rng(3)

    def _mean(self, **kwargs):
        return self.timing.sample_many(self.rng, 4000, **kwargs).mean()

    def test_misprediction_costs_more(self):
        hit = self._mean(mispredicted=False, cold=False, taken=False)
        miss = self._mean(mispredicted=True, cold=False, taken=False)
        assert miss - hit == pytest.approx(self.timing.miss_penalty, rel=0.2)

    def test_misprediction_costs_more_for_taken_too(self):
        """Figure 7: the slowdown is present regardless of direction."""
        hit = self._mean(mispredicted=False, cold=False, taken=True)
        miss = self._mean(mispredicted=True, cold=False, taken=True)
        assert miss > hit

    def test_cold_is_slower_and_noisier(self):
        warm = self.timing.sample_many(
            self.rng, 4000, mispredicted=False, cold=False, taken=False
        )
        cold = self.timing.sample_many(
            self.rng, 4000, mispredicted=False, cold=True, taken=False
        )
        assert cold.mean() > warm.mean()
        assert cold.std() > warm.std()

    def test_latencies_positive(self):
        samples = self.timing.sample_many(
            self.rng, 1000, mispredicted=False, cold=False, taken=False
        )
        assert (samples >= 1).all()

    def test_scalar_sample_in_plausible_band(self):
        for _ in range(100):
            latency = self.timing.sample(
                self.rng, mispredicted=False, cold=False, taken=False
            )
            assert 1 <= latency < 1000

    def test_figure7_band(self):
        """Latencies roughly in the paper's 60-200 cycle band."""
        samples = self.timing.sample_many(
            self.rng, 4000, mispredicted=True, cold=False, taken=True
        )
        inside = ((samples > 50) & (samples < 250)).mean()
        assert inside > 0.95


class TestProcess:
    def test_branch_address_relocation(self):
        process = Process("p", load_base=0x500000, link_base=0x400000)
        assert process.branch_address(0x401234) == 0x501234

    def test_default_no_relocation(self):
        process = Process("p")
        assert process.branch_address(0x40AAAA) == 0x40AAAA

    def test_pids_unique(self):
        assert Process("a").pid != Process("b").pid

    def test_protect_branch(self):
        process = Process("p")
        process.protect_branch(0x1234)
        assert 0x1234 in process.protected_branches

    def test_hashable(self):
        a, b = Process("a"), Process("b")
        assert len({a, b, a}) == 2
