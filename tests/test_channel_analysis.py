"""Channel-quality metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import ChannelEstimate, binary_entropy, bsc_capacity


class TestBinaryEntropy:
    def test_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == 1.0

    def test_symmetry(self):
        assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))

    def test_validation(self):
        with pytest.raises(ValueError):
            binary_entropy(-0.1)
        with pytest.raises(ValueError):
            binary_entropy(1.1)

    @given(p=st.floats(0.0, 1.0))
    def test_bounded_by_one_bit(self, p):
        assert 0.0 <= binary_entropy(p) <= 1.0


class TestBscCapacity:
    def test_perfect_channel(self):
        assert bsc_capacity(0.0) == 1.0

    def test_destroyed_channel(self):
        assert bsc_capacity(0.5) == 0.0

    def test_paper_operating_point(self):
        """At the paper's ~0.5% error the channel is essentially whole."""
        assert bsc_capacity(0.005) > 0.95

    @given(p=st.floats(0.0, 0.5))
    def test_monotone_in_error_rate(self, p):
        assert bsc_capacity(p) >= bsc_capacity(min(0.5, p + 0.01)) - 1e-9


class TestChannelEstimate:
    def test_rates(self):
        estimate = ChannelEstimate(
            error_rate=0.0, cycles_per_bit=1_000_000.0, clock_hz=2.0e9
        )
        assert estimate.raw_bits_per_second == pytest.approx(2000.0)
        assert estimate.corrected_bits_per_second == pytest.approx(2000.0)

    def test_errors_reduce_corrected_rate(self):
        clean = ChannelEstimate(0.0, 1e6)
        noisy = ChannelEstimate(0.05, 1e6)
        assert (
            noisy.corrected_bits_per_second < clean.corrected_bits_per_second
        )
        assert noisy.raw_bits_per_second == clean.raw_bits_per_second

    def test_describe(self):
        text = ChannelEstimate(0.01, 5e5).describe()
        assert "bit/s" in text and "1.00%" in text

    def test_invalid_cycles(self):
        with pytest.raises(ValueError):
            _ = ChannelEstimate(0.0, 0.0).raw_bits_per_second

    def test_end_to_end_measurement(self):
        """Estimate the simulated channel's throughput from a real run."""
        import numpy as np

        from repro.bpu import haswell
        from repro.core.covert import CovertChannel, CovertConfig, error_rate
        from repro.cpu import PhysicalCore, Process
        from repro.system.scheduler import NoiseSetting

        core = PhysicalCore(haswell().scaled(16), seed=121)
        channel = CovertChannel.for_processes(
            core,
            Process("victim"),
            Process("spy"),
            setting=NoiseSetting.ISOLATED,
            config=CovertConfig(block_branches=8000),
        )
        bits = np.random.default_rng(0).integers(0, 2, 100).tolist()
        start_cycle = core.clock.now
        received = channel.transmit(bits)
        cycles_per_bit = (core.clock.now - start_cycle) / len(bits)
        estimate = ChannelEstimate(
            error_rate=error_rate(bits, received),
            cycles_per_bit=cycles_per_bit,
        )
        assert estimate.raw_bits_per_second > 0
        assert 0.0 <= estimate.capacity_per_use <= 1.0
