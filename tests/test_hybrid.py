"""Hybrid predictor: composition, selection logic, collisions."""

import numpy as np
import pytest

from repro.bpu import Component, haswell, skylake
from repro.bpu.fsm import State
from repro.bpu.partition import Partition


@pytest.fixture
def predictor():
    return haswell().scaled(16).build()


class TestColdBranchRule:
    def test_new_branch_uses_bimodal(self, predictor):
        prediction = predictor.predict(0x400100)
        assert prediction.cold
        assert prediction.component is Component.BIMODAL

    def test_known_branch_consults_selector(self, predictor):
        predictor.execute(0x400100, True)
        prediction = predictor.predict(0x400100)
        assert not prediction.cold

    def test_cold_execution_resets_chooser(self, predictor):
        address = 0x400100
        # Drive the chooser toward gshare...
        predictor.execute(address, True)
        for _ in range(predictor.selector.max_counter + 1):
            predictor.selector.update(
                address, bimodal_correct=False, gshare_correct=True
            )
        assert predictor.selector.choose(address) is Component.GSHARE
        # ...then evict and re-execute: chooser is back to the bias.
        predictor.bit.evict(address)
        predictor.execute(address, True)
        assert predictor.selector.choose(address) is Component.BIMODAL


class TestTraining:
    def test_execute_updates_bimodal_entry(self, predictor):
        address = 0x400200
        before = predictor.bimodal_state(address)
        predictor.execute(address, True)
        after = predictor.bimodal_state(address)
        assert after >= before

    def test_saturating_training(self, predictor):
        address = 0x400200
        for _ in range(4):
            predictor.execute(address, True)
        assert predictor.bimodal_state(address) is State.ST

    def test_ghr_records_outcomes(self, predictor):
        predictor.execute(0x1, True)
        predictor.execute(0x2, False)
        predictor.execute(0x3, True)
        assert predictor.ghr.value & 0b111 == 0b101

    def test_taken_branch_with_target_allocates_btb(self, predictor):
        predictor.execute(0x400300, True, target=0x400400)
        assert predictor.btb.lookup(0x400300).target == 0x400400

    def test_not_taken_branch_does_not_allocate_btb(self, predictor):
        predictor.execute(0x400300, False, target=0x400400)
        assert predictor.btb.lookup(0x400300) is None

    def test_gshare_entry_depends_on_history(self, predictor):
        address = 0x400500
        predictor.ghr.set(0)
        i0 = predictor.gshare.index(address)
        predictor.ghr.set(0b1010)
        i1 = predictor.gshare.index(address)
        assert i0 != i1


class TestCollisions:
    def test_same_address_same_entry(self, predictor):
        """The attack's core assumption: identical virtual addresses from
        different processes share a bimodal PHT entry."""
        assert predictor.bimodal.index(0x30_0006D) == predictor.bimodal.index(
            0x30_0006D
        )

    def test_congruent_addresses_collide(self, predictor):
        n = predictor.bimodal.pht.n_entries
        assert predictor.bimodal.index(0x100) == predictor.bimodal.index(
            0x100 + n
        )

    def test_byte_granularity(self, predictor):
        """Adjacent byte addresses map to different entries (§6.3)."""
        assert predictor.bimodal.index(0x100) != predictor.bimodal.index(0x101)

    def test_key_breaks_collisions(self, predictor):
        """The §10.2 index-randomisation mitigation in action."""
        assert predictor.bimodal.index(0x100, key=0) != predictor.bimodal.index(
            0x100, key=0x5A5A
        )

    def test_partition_confines_indices(self, predictor):
        part = Partition(offset=16, size=32)
        for address in range(0, 5000, 97):
            idx = predictor.bimodal.index(address, partition=part)
            assert 16 <= idx < 48


class TestSnapshotRestore:
    def test_roundtrip_covers_all_structures(self, predictor):
        predictor.execute(0x1, True, target=0x2)
        predictor.execute(0x3, False)
        snap = predictor.snapshot()
        predictor.execute(0x1, False)
        predictor.execute(0x5, True, target=0x6)
        predictor.restore(snap)
        after = predictor.snapshot()
        assert (snap["bimodal"] == after["bimodal"]).all()
        assert (snap["gshare"] == after["gshare"]).all()
        assert snap["ghr"] == after["ghr"]
        assert (snap["selector"] == after["selector"]).all()
        assert (snap["bit"][0] == after["bit"][0]).all()
        assert (snap["bit"][1] == after["bit"][1]).all()


class TestLearningHandover:
    def test_gshare_takes_over_irregular_pattern(self):
        """Condensed Figure 2: an irregular pattern migrates to gshare."""
        predictor = skylake().build()
        rng = np.random.default_rng(5)
        pattern = rng.integers(0, 2, 10).astype(bool)
        address = 0x401000
        components = []
        for _ in range(15):
            for taken in pattern:
                components.append(
                    predictor.execute(address, bool(taken)).component
                )
        assert components[0] is Component.BIMODAL
        assert components[-1] is Component.GSHARE

    def test_handover_improves_accuracy(self):
        predictor = skylake().build()
        rng = np.random.default_rng(9)
        pattern = rng.integers(0, 2, 10).astype(bool)
        address = 0x401000
        first_pass_hits = sum(
            predictor.execute(address, bool(t)).taken == bool(t)
            for t in pattern
        )
        for _ in range(12):
            for taken in pattern:
                predictor.execute(address, bool(taken))
        last_pass_hits = sum(
            predictor.execute(address, bool(t)).taken == bool(t)
            for t in pattern
        )
        assert last_pass_hits == len(pattern)
        assert last_pass_hits > first_pass_hits
