"""Global history register and tournament selector."""

import pytest
from hypothesis import given, strategies as st

from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.selector import Choice, SelectorTable


class TestGHR:
    def test_shift_in_builds_history(self):
        ghr = GlobalHistoryRegister(4)
        for taken in (True, False, True, True):
            ghr.shift_in(taken)
        assert ghr.value == 0b1011

    def test_truncates_to_length(self):
        ghr = GlobalHistoryRegister(3)
        for _ in range(10):
            ghr.shift_in(True)
        assert ghr.value == 0b111

    def test_clear(self):
        ghr = GlobalHistoryRegister(8)
        ghr.shift_in(True)
        ghr.clear()
        assert ghr.value == 0

    def test_set_masks(self):
        ghr = GlobalHistoryRegister(4)
        ghr.set(0xFFFF)
        assert ghr.value == 0xF

    def test_snapshot_restore(self):
        ghr = GlobalHistoryRegister(8)
        ghr.shift_in(True)
        snap = ghr.snapshot()
        ghr.shift_in(False)
        ghr.restore(snap)
        assert ghr.value == snap

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            GlobalHistoryRegister(0)

    @given(outcomes=st.lists(st.booleans(), min_size=1, max_size=40))
    def test_value_is_last_n_outcomes(self, outcomes):
        n = 8
        ghr = GlobalHistoryRegister(n)
        for taken in outcomes:
            ghr.shift_in(taken)
        expected = 0
        for taken in outcomes[-n:]:
            expected = ((expected << 1) | int(taken)) & ((1 << n) - 1)
        assert ghr.value == expected


class TestSelector:
    def test_initial_choice_is_bimodal(self):
        sel = SelectorTable(16, initial_counter=1)
        assert sel.choose(0x100) is Choice.BIMODAL

    def test_saturated_counter_chooses_gshare(self):
        sel = SelectorTable(16, initial_counter=1)
        for _ in range(sel.max_counter):
            sel.update(0x100, bimodal_correct=False, gshare_correct=True)
        assert sel.choose(0x100) is Choice.GSHARE

    def test_agreement_does_not_move_counter(self):
        sel = SelectorTable(16, initial_counter=1)
        sel.update(0, bimodal_correct=True, gshare_correct=True)
        sel.update(0, bimodal_correct=False, gshare_correct=False)
        assert sel.counter(0) == 1

    def test_counter_saturates_both_ends(self):
        sel = SelectorTable(16, initial_counter=1)
        for _ in range(20):
            sel.update(0, bimodal_correct=True, gshare_correct=False)
        assert sel.counter(0) == 0
        for _ in range(20):
            sel.update(0, bimodal_correct=False, gshare_correct=True)
        assert sel.counter(0) == sel.max_counter

    def test_reset_entry(self):
        sel = SelectorTable(16, initial_counter=2)
        for _ in range(5):
            sel.update(3, bimodal_correct=False, gshare_correct=True)
        sel.reset_entry(3)
        assert sel.counter(3) == 2

    def test_entries_are_aliased_by_modulo(self):
        sel = SelectorTable(16, initial_counter=0)
        sel.update(5, bimodal_correct=False, gshare_correct=True)
        assert sel.counter(5 + 16) == 1

    def test_snapshot_restore(self):
        sel = SelectorTable(8)
        sel.update(0, bimodal_correct=False, gshare_correct=True)
        snap = sel.snapshot()
        sel.reset()
        sel.restore(snap)
        assert sel.counter(0) == snap[0]

    def test_counter_bits_validation(self):
        with pytest.raises(ValueError):
            SelectorTable(8, initial_counter=9, counter_bits=3)
        with pytest.raises(ValueError):
            SelectorTable(8, counter_bits=0)
        with pytest.raises(ValueError):
            SelectorTable(0)

    def test_wider_counters_need_more_evidence(self):
        narrow = SelectorTable(8, initial_counter=0, counter_bits=2)
        wide = SelectorTable(8, initial_counter=0, counter_bits=4)
        flips_narrow = flips_wide = 0
        for i in range(20):
            narrow.update(0, bimodal_correct=False, gshare_correct=True)
            wide.update(0, bimodal_correct=False, gshare_correct=True)
            if narrow.choose(0) is Choice.GSHARE and not flips_narrow:
                flips_narrow = i + 1
            if wide.choose(0) is Choice.GSHARE and not flips_wide:
                flips_wide = i + 1
        assert flips_narrow < flips_wide
