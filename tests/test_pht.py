"""Pattern history table behaviour."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bpu.fsm import State, skylake_fsm, textbook_2bit_fsm
from repro.bpu.pht import PatternHistoryTable


@pytest.fixture
def pht():
    return PatternHistoryTable(64, textbook_2bit_fsm())


class TestConstruction:
    def test_initial_state_everywhere(self):
        pht = PatternHistoryTable(16, textbook_2bit_fsm(), State.ST)
        assert all(pht.state(i) is State.ST for i in range(16))

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(0, textbook_2bit_fsm())

    def test_len(self, pht):
        assert len(pht) == 64


class TestEntryOperations:
    def test_update_moves_state(self, pht):
        pht.set_state(3, State.SN)
        pht.update(3, True)
        assert pht.state(3) is State.WN

    def test_predict_follows_state(self, pht):
        pht.set_state(5, State.ST)
        assert pht.predict(5)
        pht.set_state(5, State.SN)
        assert not pht.predict(5)

    def test_set_level_and_level(self, pht):
        pht.set_level(7, 2)
        assert pht.level(7) == 2

    def test_set_level_out_of_range(self, pht):
        with pytest.raises(ValueError):
            pht.set_level(0, 9)

    def test_index_bounds(self, pht):
        with pytest.raises(IndexError):
            pht.predict(64)
        with pytest.raises(IndexError):
            pht.update(-1, True)

    def test_updates_are_isolated_per_entry(self, pht):
        before = pht.snapshot()
        pht.update(10, True)
        after = pht.snapshot()
        changed = np.nonzero(before != after)[0]
        assert changed.tolist() in ([], [10])


class TestWholeTable:
    def test_snapshot_restore_roundtrip(self, pht, rng):
        pht.randomize(rng)
        snap = pht.snapshot()
        pht.update(0, True)
        pht.randomize(rng)
        pht.restore(snap)
        assert (pht.levels == snap).all()

    def test_snapshot_is_a_copy(self, pht):
        snap = pht.snapshot()
        pht.update(0, True)
        pht.update(0, True)
        assert not (snap == pht.levels).all() or pht.level(0) == snap[0]

    def test_restore_shape_mismatch(self, pht):
        with pytest.raises(ValueError):
            pht.restore(np.zeros(3, dtype=np.int8))

    def test_reset(self, pht, rng):
        pht.randomize(rng)
        pht.reset()
        assert all(pht.state(i) is State.WN for i in range(len(pht)))

    def test_randomize_covers_all_levels(self, rng):
        pht = PatternHistoryTable(4096, skylake_fsm())
        pht.randomize(rng)
        assert set(np.unique(pht.levels)) == set(range(5))

    def test_states_vectorised(self, pht):
        pht.set_state(0, State.ST)
        pht.set_state(1, State.SN)
        states = pht.states()
        assert states[0] == int(State.ST)
        assert states[1] == int(State.SN)


class TestReplayProperty:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 15), st.booleans()), max_size=60
        )
    )
    def test_update_sequence_equals_replay(self, ops):
        """Applying a sequence then restoring and re-applying is identical."""
        pht = PatternHistoryTable(16, textbook_2bit_fsm())
        start = pht.snapshot()
        for idx, taken in ops:
            pht.update(idx, taken)
        first = pht.snapshot()
        pht.restore(start)
        for idx, taken in ops:
            pht.update(idx, taken)
        assert (pht.snapshot() == first).all()

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 15), st.booleans()), max_size=60
        )
    )
    def test_entries_evolve_independently(self, ops):
        """Each entry's final level depends only on its own subsequence."""
        pht = PatternHistoryTable(16, textbook_2bit_fsm())
        fsm = pht.fsm
        for idx, taken in ops:
            pht.update(idx, taken)
        for entry in range(16):
            level = fsm.level_for(State.WN)
            for idx, taken in ops:
                if idx == entry:
                    level = fsm.step(level, taken)
            assert pht.level(entry) == level
