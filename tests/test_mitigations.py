"""§10 defenses: each must degrade or kill the attack."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.bpu.fsm import State
from repro.bpu.partition import Partition
from repro.core.attack import BranchScope
from repro.core.calibration import CalibrationError
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.cpu import PhysicalCore, Process
from repro.mitigations import (
    BpuPartitioning,
    MitigationStack,
    NoisyPerformanceCounters,
    NoisyTimer,
    PhtIndexRandomization,
    StaticPredictionForSensitiveBranches,
    StochasticFSM,
)
from repro.mitigations.base import Mitigation
from repro.system.scheduler import NoiseSetting
from repro.victims import SecretBitArrayVictim

SMALL_BLOCK = 8000


def attack_error_rate(core, n_bits=60, seed=5):
    """Run the full attack against a bit-array victim; return error rate."""
    secret = np.random.default_rng(seed).integers(0, 2, n_bits).tolist()
    victim = SecretBitArrayVictim(secret)
    attack = BranchScope(
        core,
        Process("spy"),
        victim.branch_address,
        setting=NoiseSetting.SILENT,
        block_branches=SMALL_BLOCK,
    )
    recovered = attack.spy_on_bits(
        lambda: victim.execute_next(core), n_bits
    )
    truth = [bool(b) for b in victim.reveal_secret()]
    return error_rate(
        [int(b) for b in truth], [int(b) for b in recovered]
    )


class TestBaselineIsVulnerable:
    def test_no_mitigation_perfect_recovery(self):
        core = PhysicalCore(haswell().scaled(16), seed=61)
        assert attack_error_rate(core) == 0.0


class TestPhtIndexRandomization:
    def test_keys_differ_per_process(self):
        mitigation = PhtIndexRandomization(np.random.default_rng(0))
        a, b = Process("a"), Process("b")
        assert mitigation.pht_key(a) != mitigation.pht_key(b)
        assert mitigation.pht_key(a) == mitigation.pht_key(a)

    def test_rekey_period(self):
        mitigation = PhtIndexRandomization(
            np.random.default_rng(0), rekey_period=2
        )
        a = Process("a")
        first = mitigation.pht_key(a)
        keys = {mitigation.pht_key(a) for _ in range(20)}
        assert len(keys | {first}) > 1

    def test_defeats_the_attack(self):
        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(
            PhtIndexRandomization(np.random.default_rng(1))
        )
        # Spy and victim no longer collide: recovered bits ~ coin flips.
        assert attack_error_rate(core) > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            PhtIndexRandomization(rekey_period=0)


class TestPartitioning:
    def test_partition_shapes(self):
        mitigation = BpuPartitioning.by_enclave(1024)
        normal = mitigation.partition(Process("n"))
        enclave_process = Process("e", enclave=True)
        sealed = mitigation.partition(enclave_process)
        assert normal.size == sealed.size == 512
        assert normal.offset != sealed.offset

    def test_by_process_partitions_disjoint(self):
        mitigation = BpuPartitioning.by_process(1024, n_partitions=4)
        parts = {
            mitigation.partition(Process(f"p{i}")).offset for i in range(8)
        }
        assert len(parts) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BpuPartitioning.by_process(1000, n_partitions=3)
        with pytest.raises(ValueError):
            Partition(offset=-1, size=4)

    def test_defeats_cross_process_attack(self):
        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(
            BpuPartitioning.by_process(
                core.predictor.bimodal.pht.n_entries, n_partitions=4
            )
        )
        # Spy (pid != victim pid mod 4, overwhelmingly) sees noise.  If
        # the pids happen to share a partition, skip — the defense only
        # separates distinct partitions by design.
        secret = np.random.default_rng(5).integers(0, 2, 60).tolist()
        victim = SecretBitArrayVictim(secret)
        spy = Process("spy")
        if spy.pid % 4 == victim.process.pid % 4:
            pytest.skip("processes landed in the same partition")
        attack = BranchScope(
            core,
            spy,
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        try:
            recovered = attack.spy_on_bits(
                lambda: victim.execute_next(core), 60
            )
        except CalibrationError:
            return  # even calibration failed: defense works
        truth = [bool(b) for b in victim.reveal_secret()]
        wrong = sum(a != b for a, b in zip(recovered, truth))
        assert wrong / 60 > 0.2


class TestStaticPrediction:
    def test_defeats_attack_on_protected_branch(self):
        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        secret = np.random.default_rng(5).integers(0, 2, 60).tolist()
        victim = SecretBitArrayVictim(secret)
        victim.process.protect_branch(victim.branch_address)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), 60
        )
        # Victim branch no longer touches the PHT: the spy reads only its
        # own prime state, decoding a constant — half the random bits.
        truth = [bool(b) for b in victim.reveal_secret()]
        wrong = sum(a != b for a, b in zip(recovered, truth))
        assert wrong / 60 > 0.2

    def test_spy_branches_unaffected(self):
        """Only marked branches pay the cost (the defense is surgical)."""
        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        assert attack_error_rate(core) == 0.0


class TestNoisyCounters:
    def test_degrades_counter_probing(self):
        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(NoisyPerformanceCounters(magnitude=3))
        # Counter fuzz destroys probe patterns; either the pre-attack
        # calibration can never find a stable block, or the recovered
        # bits are badly corrupted.  Both outcomes are the defense
        # succeeding.
        try:
            assert attack_error_rate(core) > 0.1
        except CalibrationError:
            pass

    def test_zero_magnitude_is_identity(self, rng):
        mitigation = NoisyPerformanceCounters(magnitude=0)
        assert mitigation.perturb_counter(rng, 42) == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisyPerformanceCounters(magnitude=-1)


class TestNoisyTimer:
    def test_perturbs_latency(self, rng):
        mitigation = NoisyTimer(sigma=50)
        values = {mitigation.perturb_timing(rng, 100) for _ in range(30)}
        assert len(values) > 5

    def test_zero_sigma_identity(self, rng):
        assert NoisyTimer(sigma=0).perturb_timing(rng, 100) == 100

    def test_degrades_timing_channel_not_counter_channel(self):
        from repro.core.timing_detect import calibrate_timing

        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(NoisyTimer(sigma=120))
        spy = Process("spy")
        calibration = calibrate_timing(core, spy, n=400)
        # Separation collapses relative to the noise.
        separation = calibration.miss_mean - calibration.hit_mean
        assert separation < 120
        # The counter channel is untouched.
        assert attack_error_rate(core) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisyTimer(sigma=-1)


class TestStochasticFSM:
    def test_degrades_attack(self):
        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(StochasticFSM(flip_prob=0.5))
        assert attack_error_rate(core) > 0.05

    def test_zero_flip_prob_is_identity(self):
        core = PhysicalCore(haswell().scaled(16), seed=61)
        core.install_mitigation(StochasticFSM(flip_prob=0.0))
        assert attack_error_rate(core) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StochasticFSM(flip_prob=1.5)


class TestMitigationStack:
    def test_stacking_composes_keys(self):
        stack = MitigationStack()
        process = Process("p")

        class KeyA(Mitigation):
            def pht_key(self, process):
                return 0b1100

        class KeyB(Mitigation):
            def pht_key(self, process):
                return 0b1010

        stack.install(KeyA())
        stack.install(KeyB())
        assert stack.pht_key(process) == 0b0110

    def test_identity_defaults(self, rng):
        stack = MitigationStack()
        process = Process("p")
        assert stack.pht_key(process) == 0
        assert stack.partition(process) is None
        assert not stack.suppresses_prediction(process, 0x1)
        assert stack.update_outcome(rng, True) is True
        assert stack.perturb_counter(rng, 5) == 5
        assert stack.perturb_timing(rng, 9) == 9

    def test_len_and_iter(self):
        stack = MitigationStack([Mitigation()])
        stack.install(Mitigation())
        assert len(stack) == 2
        assert len(list(stack)) == 2
