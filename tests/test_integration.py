"""End-to-end integration: the paper's headline scenarios, condensed."""

import numpy as np
import pytest

from repro.bpu import haswell, skylake
from repro.core.attack import BranchScope
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.cpu import PhysicalCore, Process
from repro.system import Enclave, MaliciousOS, NoiseSetting
from repro.victims import (
    JpegDecoderVictim,
    MontgomeryLadderVictim,
    encode_image,
)

SMALL_BLOCK = 8000


class TestMontgomeryKeyRecovery:
    """§9.2: recover a private exponent bit-for-bit from the ladder."""

    def test_full_key_recovery(self):
        core = PhysicalCore(haswell().scaled(16), seed=71)
        secret_key = 0xB6D3_9A5C_1F07
        victim = MontgomeryLadderVictim(secret_key)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        bits = attack.spy_on_bits(
            lambda: victim.step(core), victim.n_bits
        )
        recovered = 0
        for bit in bits:
            recovered = (recovered << 1) | int(bit)
        assert recovered == secret_key
        # The victim's computation still completed correctly.
        assert victim.result == pow(
            victim.base, secret_key, victim.modulus
        )


class TestJpegComplexityRecovery:
    """§9.2: reconstruct the image's sparsity map from IDCT branches."""

    def test_zero_row_map_recovery(self):
        core = PhysicalCore(haswell().scaled(16), seed=72)
        rng = np.random.default_rng(4)
        y, x = np.mgrid[0:16, 0:24]
        image = encode_image(
            np.clip(110 + 60 * np.sin(x / 4.0) + rng.normal(0, 5, (16, 24)), 0, 255)
        )
        victim = JpegDecoderVictim(image)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.row_branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        rows_per_image = (
            image.block_grid[0] * image.block_grid[1] * 8
        )
        recovered = []
        while not victim.finished:
            # Spy on row checks; let column checks pass unobserved.  The
            # row/column schedule is public decoder code.
            if victim.next_branch_address() == victim.row_branch_address:
                recovered.append(
                    attack.spy_on_branch(lambda: victim.step(core)).taken
                )
            else:
                victim.step(core)
        truth = (~image.zero_row_map()).flatten().tolist()
        assert len(recovered) == rows_per_image
        matches = sum(a == b for a, b in zip(recovered, truth))
        assert matches / rows_per_image > 0.95


class TestSgxCovertChannel:
    """§9/Table 3: the enclave sender with an OS-assisted spy."""

    def _run(self, quiesce, n_bits=200):
        core = PhysicalCore(skylake().scaled(16), seed=73)
        rng = np.random.default_rng(8)
        secret = rng.integers(0, 2, n_bits).tolist()
        cursor = {"i": 0}
        config = CovertConfig(block_branches=SMALL_BLOCK)
        spy = Process("spy")
        enclave_process = Process("trojan")
        address = enclave_process.branch_address(
            config.branch_link_address
        )

        def step_fn(c):
            bit = secret[cursor["i"] % n_bits]
            cursor["i"] += 1
            c.execute_branch(enclave_process, address, bit == 1)

        enclave = Enclave(enclave_process, step_fn)
        osctl = MaliciousOS(core, quiesce=quiesce)

        base = CovertChannel.for_processes(
            core, enclave_process, spy,
            setting=NoiseSetting.SILENT, config=config,
        )
        received = []
        for _ in range(n_bits):
            base.block.apply(core, spy)
            osctl.stage_gap()
            osctl.single_step(enclave)
            osctl.stage_gap()
            pattern = base._probe_pattern()
            received.append(base.dictionary[pattern])
        return error_rate(secret, received)

    def test_quiesced_error_is_low(self):
        assert self._run(quiesce=True) < 0.05

    def test_quiesced_not_worse_than_noisy(self):
        assert self._run(quiesce=True) <= self._run(quiesce=False) + 0.02


class TestCrossPresetConsistency:
    @pytest.mark.parametrize("preset", [haswell, skylake])
    def test_covert_channel_works_everywhere(self, preset):
        core = PhysicalCore(preset().scaled(16), seed=74)
        channel = CovertChannel.for_processes(
            core,
            Process("victim"),
            Process("spy"),
            setting=NoiseSetting.SILENT,
            config=CovertConfig(block_branches=SMALL_BLOCK),
        )
        bits = np.random.default_rng(0).integers(0, 2, 100).tolist()
        assert channel.transmit(bits) == bits
