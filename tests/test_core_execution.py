"""PhysicalCore: branch execution, counters, checkpointing, mitigation hooks."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.bpu.fsm import State
from repro.cpu import CounterKind, PhysicalCore, Process
from repro.mitigations import (
    NoisyPerformanceCounters,
    StaticPredictionForSensitiveBranches,
    StochasticFSM,
)


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=11)


@pytest.fixture
def process():
    return Process("worker")


class TestExecution:
    def test_execution_record_fields(self, core, process):
        record = core.execute_branch(process, 0x400100, True)
        assert record.pid == process.pid
        assert record.address == 0x400100
        assert record.taken is True
        assert record.hit == (record.predicted_taken == record.taken)
        assert record.latency >= 1
        assert record.cold_fetch  # first ever fetch misses the i-cache

    def test_second_execution_is_warm(self, core, process):
        core.execute_branch(process, 0x400100, True)
        record = core.execute_branch(process, 0x400100, True)
        assert not record.cold_fetch

    def test_counters_accumulate(self, core, process):
        for _ in range(5):
            core.execute_branch(process, 0x400100, True)
        counters = core.counters_for(process)
        assert counters.read(CounterKind.BRANCHES) == 5
        assert counters.read(CounterKind.CYCLES) == core.clock.now

    def test_misprediction_counted(self, core, process):
        index = core.predictor.bimodal.index(0x400100)
        core.predictor.bimodal.pht.set_state(index, State.SN)
        record = core.execute_branch(process, 0x400100, True)
        assert record.mispredicted
        assert (
            core.counters_for(process).read(CounterKind.BRANCH_MISSES) == 1
        )

    def test_counters_are_per_process(self, core):
        a, b = Process("a"), Process("b")
        core.execute_branch(a, 0x1, True)
        assert core.counters_for(a).read(CounterKind.BRANCHES) == 1
        assert core.counters_for(b).read(CounterKind.BRANCHES) == 0

    def test_bpu_state_is_shared_between_processes(self, core):
        """The channel itself: process A's branch trains the entry
        process B's colliding branch is predicted from."""
        a, b = Process("a"), Process("b")
        address = 0x400100
        for _ in range(4):
            core.execute_branch(a, address, True)
        record = core.execute_branch(b, address, True)
        assert record.prediction.bimodal_taken is True

    def test_clock_advances_by_latency(self, core, process):
        t0 = core.clock.now
        record = core.execute_branch(process, 0x1, False)
        assert core.clock.now == t0 + record.latency

    def test_execute_branches_convenience(self, core, process):
        records = core.execute_branches(
            process, [(0x1, True), (0x2, False), (0x3, True)]
        )
        assert [r.address for r in records] == [0x1, 0x2, 0x3]

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ValueError):
            PhysicalCore(
                haswell().scaled(16),
                rng=np.random.default_rng(0),
                seed=1,
            )

    def test_seeded_cores_are_deterministic(self):
        config = haswell().scaled(16)
        latencies = []
        for _ in range(2):
            core = PhysicalCore(config, seed=99)
            process = Process("p")
            latencies.append(
                [core.execute_branch(process, 0x1, True).latency for _ in range(20)]
            )
        assert latencies[0] == latencies[1]


class TestCheckpoint:
    def test_restore_recovers_predictor_and_clock(self, core, process):
        core.execute_branch(process, 0x1, True)
        checkpoint = core.checkpoint()
        state_before = core.predictor.bimodal_state(0x1)
        for _ in range(5):
            core.execute_branch(process, 0x1, False)
        core.restore(checkpoint)
        assert core.predictor.bimodal_state(0x1) is state_before
        assert core.clock.now == checkpoint["clock"]

    def test_restore_recovers_counters(self, core, process):
        core.execute_branch(process, 0x1, True)
        checkpoint = core.checkpoint()
        core.execute_branch(process, 0x1, True)
        core.restore(checkpoint)
        assert core.counters_for(process).read(CounterKind.BRANCHES) == 1

    def test_restore_handles_processes_created_later(self, core):
        checkpoint = core.checkpoint()
        late = Process("late")
        core.execute_branch(late, 0x1, True)
        core.restore(checkpoint)  # must not raise
        assert core.counters_for(late).read(CounterKind.BRANCHES) in (0, 1)


class TestMitigationHooks:
    def test_static_prediction_bypasses_bpu(self, core, process):
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        address = 0x400100
        process.protect_branch(address)
        state_before = core.predictor.bimodal_state(address)
        record = core.execute_branch(process, address, True)
        assert record.static
        assert record.prediction is None
        assert not record.predicted_taken  # static not-taken
        assert core.predictor.bimodal_state(address) is state_before
        assert not core.predictor.bit.contains(address)

    def test_static_prediction_only_for_marked_branches(self, core, process):
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        record = core.execute_branch(process, 0x400100, True)
        assert not record.static

    def test_noisy_counters_perturb_reads(self, core, process):
        core.install_mitigation(NoisyPerformanceCounters(magnitude=5))
        core.counters_for(process).increment(CounterKind.BRANCH_MISSES, 100)
        reads = {
            core.read_counter(process, CounterKind.BRANCH_MISSES)
            for _ in range(50)
        }
        assert len(reads) > 1
        assert all(95 <= r <= 105 for r in reads)

    def test_stochastic_fsm_corrupts_training(self, core, process):
        core.install_mitigation(StochasticFSM(flip_prob=1.0))
        address = 0x400100
        # With flip_prob=1 every update trains a random direction, so
        # saturating with taken outcomes must not reliably reach ST.
        outcomes = []
        for trial in range(20):
            idx = core.predictor.bimodal.index(address)
            core.predictor.bimodal.pht.set_state(idx, State.WN)
            for _ in range(4):
                core.execute_branch(process, address, True)
            outcomes.append(core.predictor.bimodal_state(address))
        assert any(state is not State.ST for state in outcomes)
