"""Programs and the slice scheduler."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.bpu.fsm import State
from repro.core.calibration import find_block
from repro.core.covert import build_dictionary, error_rate
from repro.core.patterns import DecodedState
from repro.cpu import PhysicalCore, Process
from repro.cpu.counters import CounterKind
from repro.mitigations import BtbFlushOnContextSwitch
from repro.system.programs import (
    BranchOp,
    Program,
    SliceScheduler,
    Yield,
    program_from_branches,
)


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=101)


class TestProgram:
    def test_runs_branches_until_slice_limit(self, core):
        program = program_from_branches(
            Process("p"), [(0x100 + i, True) for i in range(10)]
        )
        assert program.run_slice(core, 4) == 4
        assert not program.finished
        assert len(program.executions) == 4

    def test_finishes_when_stream_ends(self, core):
        program = program_from_branches(Process("p"), [(0x1, True)])
        assert program.run_slice(core, 10) == 1
        assert program.finished
        assert program.run_slice(core, 10) == 0

    def test_yield_ends_slice_early(self, core):
        def body(_):
            yield BranchOp(0x1, True)
            yield Yield()
            yield BranchOp(0x2, False)

        program = Program(Process("p"), body)
        assert program.run_slice(core, 10) == 1
        assert not program.finished
        assert program.run_slice(core, 10) == 1
        assert program.finished

    def test_last_execution(self, core):
        program = program_from_branches(Process("p"), [(0x5, True)])
        assert program.last_execution is None
        program.run_slice(core, 1)
        assert program.last_execution.address == 0x5

    def test_program_logic_can_react_to_its_counters(self, core):
        """A program reading its own PMCs between branches — the spy's
        modus operandi."""
        observations = []

        def body(program):
            for _ in range(3):
                before = core.read_counter(
                    program.process, CounterKind.BRANCHES
                )
                yield BranchOp(0x9, True)
                after = core.read_counter(
                    program.process, CounterKind.BRANCHES
                )
                observations.append(after - before)

        program = Program(Process("p"), body)
        program.run_slice(core, 10)
        assert observations == [1, 1, 1]


class TestSliceScheduler:
    def test_round_robin_interleaving(self, core):
        order = []

        def make_body(tag, count):
            def body(_):
                for i in range(count):
                    order.append(tag)
                    yield BranchOp(0x1000 * (tag + 1) + i, True)

            return body

        a = Program(Process("a"), make_body(0, 4))
        b = Program(Process("b"), make_body(1, 4))
        scheduler = SliceScheduler(core, [a, b], default_slice=2)
        scheduler.run()
        assert order == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_victim_slowdown_slice_of_one(self, core):
        victim = program_from_branches(
            Process("victim"), [(0x30_0006D, True)] * 5
        )
        spy = program_from_branches(
            Process("spy"), [(0x200 + i, False) for i in range(50)]
        )
        scheduler = SliceScheduler(
            core, [spy, victim], slices={victim: 1, spy: 10}
        )
        scheduler.run_round()
        assert len(victim.executions) == 1
        assert len(spy.executions) == 10

    def test_run_returns_rounds(self, core):
        program = program_from_branches(
            Process("p"), [(i, True) for i in range(10)]
        )
        scheduler = SliceScheduler(core, [program], default_slice=3)
        rounds = scheduler.run()
        assert rounds == 4  # 3+3+3+1
        assert scheduler.all_finished

    def test_max_rounds_guard(self, core):
        def endless(_):
            while True:
                yield BranchOp(0x1, True)

        program = Program(Process("p"), endless)
        scheduler = SliceScheduler(core, [program], default_slice=1)
        with pytest.raises(RuntimeError):
            scheduler.run(max_rounds=5)

    def test_context_switch_hooks_fire(self, core):
        defense = BtbFlushOnContextSwitch()
        core.install_mitigation(defense)
        programs = [
            program_from_branches(Process("p"), [(0x1, True)] * 3),
            program_from_branches(Process("q"), [(0x2, True)] * 3),
        ]
        scheduler = SliceScheduler(core, programs, default_slice=1)
        scheduler.run()
        assert defense.flush_count >= 6

    def test_validation(self, core):
        with pytest.raises(ValueError):
            SliceScheduler(core, [])
        with pytest.raises(ValueError):
            SliceScheduler(
                core,
                [program_from_branches(Process("p"), [])],
                default_slice=0,
            )


class TestFullyScheduledAttack:
    def test_covert_channel_through_the_scheduler(self, core):
        """The complete attack loop with every branch scheduler-driven."""
        spy_process = Process("spy")
        victim_process = Process("victim")
        secret = np.random.default_rng(7).integers(0, 2, 12).tolist()
        address = victim_process.branch_address(0x30_0006D)

        compiled = find_block(
            core, spy_process, address, DecodedState.SN,
            block_branches=6000, repetitions=10,
        )
        block = compiled.block
        dictionary = build_dictionary(
            core.predictor.bimodal.pht.fsm, State.SN, (True, True)
        )
        received = []

        def spy_body(_program):
            for _ in secret:
                for a, t in zip(block.addresses, block.outcomes):
                    yield BranchOp(int(a), bool(t))
                yield Yield()
                hits = []
                for outcome in (True, True):
                    before = core.read_counter(
                        spy_process, CounterKind.BRANCH_MISSES
                    )
                    yield BranchOp(address, outcome)
                    after = core.read_counter(
                        spy_process, CounterKind.BRANCH_MISSES
                    )
                    hits.append(after - before <= 0)
                received.append(
                    dictionary[
                        ("H" if hits[0] else "M") + ("H" if hits[1] else "M")
                    ]
                )

        def victim_body(_program):
            for bit in secret:
                yield BranchOp(address, bit == 1)

        spy = Program(spy_process, spy_body)
        victim = Program(victim_process, victim_body)
        scheduler = SliceScheduler(
            core, [spy, victim], slices={spy: len(block) + 10, victim: 1}
        )
        scheduler.run()
        assert error_rate(secret, received) == 0.0
