"""Shared engine-support predicates (:mod:`repro.core.support`).

Each vectorised engine gates itself on the same three condition
families — observation hooks, index hash, timing/plan — through this
one module, so the unit tests pin the predicates directly and then
cross-check that the engines' historical entry points still re-export
them.
"""

import numpy as np
import pytest

from repro.bpu.presets import PRESETS, haswell, oryon_like
from repro.core.support import (
    batch_assess_fallback_reason,
    batch_assess_supported,
    batch_scan_fallback_reason,
    batch_scan_supported,
    index_hash_batchable,
    manycore_fallback_reason,
    observation_hooks_clean,
    scalar_engine_forced,
)
from repro.cpu.core import PhysicalCore
from repro.cpu.timing import TimingModel
from repro.mitigations.noisy_counters import NoisyPerformanceCounters
from repro.mitigations.pht_randomization import PhtIndexRandomization
from repro.mitigations.static_prediction import (
    StaticPredictionForSensitiveBranches,
)
from repro.mitigations.stochastic_fsm import StochasticFSM


def _core(factory=haswell, **kwargs):
    return PhysicalCore(factory().scaled(16), seed=3, **kwargs)


class TestObservationHooks:
    def test_clean_core(self):
        assert observation_hooks_clean(_core())

    def test_index_hooks_do_not_disqualify(self):
        core = _core()
        core.install_mitigation(
            PhtIndexRandomization(np.random.default_rng(1))
        )
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        assert observation_hooks_clean(core)

    @pytest.mark.parametrize(
        "mitigation",
        [
            lambda: NoisyPerformanceCounters(magnitude=2),
            lambda: StochasticFSM(flip_prob=0.1),
        ],
        ids=["noisy_counters", "stochastic_fsm"],
    )
    def test_observation_hooks_disqualify(self, mitigation):
        core = _core()
        core.install_mitigation(mitigation())
        assert not observation_hooks_clean(core)
        assert not batch_scan_supported(core)
        assert batch_scan_fallback_reason(core) == "mitigation"


class TestIndexHash:
    def test_mod_presets_batchable(self):
        for name in ("skylake", "haswell", "sandy_bridge", "tage_like"):
            assert index_hash_batchable(_core(PRESETS[name]))

    def test_fold_preset_not_batchable(self):
        core = _core(oryon_like)
        assert not index_hash_batchable(core)
        assert batch_scan_fallback_reason(core) == "index_hash"
        assert batch_assess_fallback_reason(core) == "index_hash"
        assert manycore_fallback_reason(core) == "index_hash"


class TestTimingAndPlan:
    def test_base_timing_supported(self):
        core = _core()
        assert batch_assess_supported(core)
        assert batch_assess_fallback_reason(core) is None

    def test_custom_timing_needs_a_plan(self):
        class SlowTiming(TimingModel):
            pass

        core = _core(timing=SlowTiming())
        assert not batch_assess_supported(core)
        assert batch_assess_fallback_reason(core) == "custom_timing"
        # A pre-drawn plan removes the sampling concern entirely.
        assert batch_assess_supported(core, plan=object())
        assert batch_assess_fallback_reason(core, plan=object()) is None
        # find_block's gate mirrors this: pooled runs pre-draw plans.
        assert scalar_engine_forced(core, pooled=False)
        assert not scalar_engine_forced(core, pooled=True)


class TestManycore:
    def test_clean_core_supported(self):
        assert manycore_fallback_reason(_core()) is None

    def test_any_mitigation_disqualifies(self):
        core = _core()
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        assert manycore_fallback_reason(core) == "mitigation"

    def test_empty_noise_gap_disqualifies(self):
        core = _core()
        assert manycore_fallback_reason(core, np.array([3, 2, 1])) is None
        assert (
            manycore_fallback_reason(core, np.array([3, 0, 1]))
            == "unshared_structure"
        )


class TestReExports:
    """The engines' historical entry points resolve to the shared home."""

    def test_batch_probe_reexport(self):
        from repro.core import batch_probe

        assert batch_probe.batch_scan_supported is batch_scan_supported

    def test_core_package_reexport(self):
        from repro import core

        assert core.batch_scan_supported is batch_scan_supported
        assert core.manycore_fallback_reason is manycore_fallback_reason
