"""Multi-branch spying (§6.3's aggressive attack)."""

import numpy as np
import pytest

from repro.bpu import haswell, skylake
from repro.core.calibration import CalibrationError
from repro.core.multi import MultiBranchScope
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting

ADDRESSES = [0x30_0006D, 0x40_1100, 0x40_A210]
SMALL_BLOCK = 8000


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=111)


@pytest.fixture
def spy():
    return Process("spy")


class TestCalibration:
    def test_finds_block_pinning_all_targets(self, core, spy):
        scope = MultiBranchScope(
            core, spy, ADDRESSES,
            setting=NoiseSetting.SILENT, block_branches=SMALL_BLOCK,
        )
        compiled = scope.calibrate()
        for address in ADDRESSES:
            assert compiled.pins_entry(core, address)

    def test_every_plan_decodable(self, core, spy):
        scope = MultiBranchScope(
            core, spy, ADDRESSES,
            setting=NoiseSetting.SILENT, block_branches=SMALL_BLOCK,
        )
        for plan in scope.plans:
            assert set(plan.dictionary) == {"MM", "MH", "HM", "HH"}
            assert set(plan.dictionary.values()) == {0, 1}

    def test_raises_when_impossible(self, core, spy):
        scope = MultiBranchScope(
            core, spy, ADDRESSES,
            setting=NoiseSetting.SILENT, block_branches=50,
        )
        with pytest.raises(CalibrationError):
            scope.calibrate(max_candidates=5)

    def test_aliasing_addresses_rejected(self, core, spy):
        n = core.predictor.bimodal.pht.n_entries
        with pytest.raises(ValueError):
            MultiBranchScope(core, spy, [0x100, 0x100 + n])

    def test_empty_addresses_rejected(self, core, spy):
        with pytest.raises(ValueError):
            MultiBranchScope(core, spy, [])


class TestSpyEpisode:
    def _scope_and_victim(self, core, spy, setting=NoiseSetting.SILENT):
        victim = Process("victim")
        scope = MultiBranchScope(
            core, spy, ADDRESSES,
            setting=setting, block_branches=SMALL_BLOCK,
        )
        return scope, victim

    def test_recovers_all_directions_in_one_episode(self, core, spy):
        scope, victim = self._scope_and_victim(core, spy)
        rng = np.random.default_rng(3)
        for _ in range(15):
            directions = {
                a: bool(rng.integers(0, 2)) for a in ADDRESSES
            }

            def trigger():
                for address, taken in directions.items():
                    core.execute_branch(victim, address, taken)

            recovered = scope.spy_episode(trigger)
            assert recovered == directions

    def test_execution_order_inside_episode_is_irrelevant(self, core, spy):
        scope, victim = self._scope_and_victim(core, spy)
        directions = {ADDRESSES[0]: True, ADDRESSES[1]: False,
                      ADDRESSES[2]: True}

        def trigger_reversed():
            for address in reversed(ADDRESSES):
                core.execute_branch(victim, address, directions[address])

        assert scope.spy_episode(trigger_reversed) == directions

    def test_low_error_under_isolated_noise(self, core, spy):
        scope, victim = self._scope_and_victim(
            core, spy, setting=NoiseSetting.ISOLATED
        )
        rng = np.random.default_rng(4)
        wrong = total = 0
        for _ in range(25):
            directions = {a: bool(rng.integers(0, 2)) for a in ADDRESSES}

            def trigger():
                for address, taken in directions.items():
                    core.execute_branch(victim, address, taken)

            recovered = scope.spy_episode(trigger)
            for address in ADDRESSES:
                total += 1
                wrong += recovered[address] != directions[address]
        assert wrong / total < 0.15

    def test_spy_episodes_plural(self, core, spy):
        scope, victim = self._scope_and_victim(core, spy)

        def trigger():
            for address in ADDRESSES:
                core.execute_branch(victim, address, True)

        episodes = scope.spy_episodes(trigger, 3)
        assert len(episodes) == 3
        assert all(all(e.values()) for e in episodes)

    def test_works_on_skylake_fsm(self, spy):
        """The ST-side undecodability must be handled by calibration."""
        core = PhysicalCore(skylake().scaled(16), seed=112)
        victim = Process("victim")
        scope = MultiBranchScope(
            core, spy, ADDRESSES[:2],
            setting=NoiseSetting.SILENT, block_branches=SMALL_BLOCK,
        )
        fsm = core.predictor.bimodal.pht.fsm
        for plan in scope.plans:
            # No plan may rely on a Skylake ST-side pinned level.
            assert not (
                fsm.predicts(plan.pinned_level)
                and plan.pinned_level >= 3
            )
        directions = {ADDRESSES[0]: False, ADDRESSES[1]: True}

        def trigger():
            for address, taken in directions.items():
                core.execute_branch(victim, address, taken)

        assert scope.spy_episode(trigger) == directions
