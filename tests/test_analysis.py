"""Statistics and report-formatting helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    binomial_confidence_interval,
    format_table,
    mean_and_std,
    state_distribution,
)
from repro.core.patterns import DecodedState


class TestMeanAndStd:
    def test_basic(self):
        mean, std = mean_and_std([2.0, 4.0])
        assert mean == 3.0 and std == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_std([])


class TestBinomialCI:
    def test_contains_point_estimate(self):
        low, high = binomial_confidence_interval(30, 100)
        assert low < 0.3 < high

    def test_bounds_clipped_to_unit_interval(self):
        low, _ = binomial_confidence_interval(0, 10)
        _, high = binomial_confidence_interval(10, 10)
        assert low == 0.0 and high == 1.0

    def test_narrows_with_more_trials(self):
        low_small, high_small = binomial_confidence_interval(5, 50)
        low_big, high_big = binomial_confidence_interval(500, 5000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_confidence_interval(1, 0)
        with pytest.raises(ValueError):
            binomial_confidence_interval(5, 3)

    @given(
        trials=st.integers(1, 500),
        data=st.data(),
    )
    def test_interval_always_valid(self, trials, data):
        successes = data.draw(st.integers(0, trials))
        low, high = binomial_confidence_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0


class TestStateDistribution:
    def test_frequencies_sum_to_one(self):
        states = [DecodedState.SN] * 3 + [DecodedState.DIRTY]
        dist = state_distribution(states)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[DecodedState.SN] == 0.75
        assert dist[DecodedState.WT] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            state_distribution([])


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["CPU", "error"],
            [["skylake", "0.46%"], ["sb", "2.44%"]],
            title="Table 2",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "CPU" in lines[1] and "error" in lines[1]
        assert "skylake" in lines[3]
        # Columns align: every row has the separator at the same offset.
        sep_col = lines[1].index("error")
        assert lines[3][sep_col - 2 : sep_col] == "  "

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_no_title(self):
        text = format_table(["a"], [["1"]])
        assert text.splitlines()[0].startswith("a")
