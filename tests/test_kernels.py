"""Kernel backends and heterogeneous-group batching: differential suite.

Two contracts are pinned here:

* **Backend bit-identity** — every available kernel backend (numpy,
  numba, cffi) returns bit-identical results for every op, on every
  shipped preset, and no op moves any RNG stream, so assessments *and*
  stream-position digests are backend-independent.
* **Grouped == per-trial** — a mixed-structure campaign routed through
  the heterogeneous-group dispatcher equals the per-trial process
  reference payload for payload, including under checkpoint
  kill/resume, with every degenerate payload counted as a fallback.
"""

import dataclasses

import numpy as np
import pytest

from repro import kernels
from repro.bpu.presets import haswell, sandy_bridge, skylake
from repro.core.calibration import (
    assess_block_batch,
    stability_experiment,
)
from repro.core.manycore import (
    ManycoreCampaignPool,
    group_batch_stats,
    manycore_supported,
    reset_group_batch_stats,
)
from repro.core.randomizer import (
    RandomizationBlock,
    clear_compile_cache,
    compile_cache_info,
)
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.obs import trace as obs
from repro.resilience.checkpoint import rng_state_digest
from repro.system.noise import NoiseModel

TARGET = 0x30_0006D

ALL_PRESETS = [skylake, haswell, sandy_bridge]

#: Backends that can load in this interpreter; numpy is always first.
BACKENDS = kernels.available_backends()


@pytest.fixture(autouse=True)
def _clean_state():
    obs.reset_scalar_fallbacks()
    reset_group_batch_stats()
    kernels.set_backend(None)
    yield
    kernels.set_backend(None)
    obs.reset_scalar_fallbacks()


def _monoid_inputs(preset, n=4096, n_out=37):
    core = PhysicalCore(preset().scaled(16), seed=11)
    monoid = core.predictor.bimodal.pht.fsm.transition_monoid()
    rng = np.random.default_rng(42)
    outcomes = rng.integers(0, 2, size=n).astype(bool)
    ids = monoid.outcome_id_sequence(outcomes).astype(np.int64)
    positions = rng.integers(-1, n_out, size=n).astype(np.int64)
    return monoid, ids, positions


class TestOpDifferential:
    """Every op x every backend x every preset, against numpy."""

    @pytest.mark.parametrize("preset", ALL_PRESETS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fold_and_reduce(self, preset, backend):
        monoid, ids, positions = _monoid_inputs(preset)
        kernels.set_backend("numpy")
        ref_fold = np.asarray(
            kernels.fold_ids(
                positions, ids, monoid.compose_table, 37, monoid.IDENTITY
            )
        )
        ref_reduce = int(
            kernels.reduce_ids(ids, monoid.compose_table, monoid.IDENTITY)
        )
        assert kernels.set_backend(backend) == backend
        got_fold = np.asarray(
            kernels.fold_ids(
                positions, ids, monoid.compose_table, 37, monoid.IDENTITY
            )
        )
        got_reduce = int(
            kernels.reduce_ids(ids, monoid.compose_table, monoid.IDENTITY)
        )
        assert got_reduce == ref_reduce
        assert np.array_equal(got_fold, ref_fold)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fold_edge_cases(self, backend):
        monoid, ids, _ = _monoid_inputs(skylake, n=64)
        kernels.set_backend(backend)
        none = np.empty(0, dtype=np.int64)
        empty = np.asarray(
            kernels.fold_ids(
                none, none, monoid.compose_table, 5, monoid.IDENTITY
            )
        )
        assert empty.shape == (5,) and (empty == monoid.IDENTITY).all()
        skipped = np.asarray(
            kernels.fold_ids(
                np.full(64, -1, dtype=np.int64),
                ids,
                monoid.compose_table,
                5,
                monoid.IDENTITY,
            )
        )
        assert (skipped == monoid.IDENTITY).all()
        assert (
            int(
                kernels.reduce_ids(
                    none, monoid.compose_table, monoid.IDENTITY
                )
            )
            == monoid.IDENTITY
        )

    @pytest.mark.parametrize("preset", ALL_PRESETS)
    def test_summarize_and_read_levels(self, preset):
        pool = ManycoreCampaignPool(
            lambda: PhysicalCore(preset().scaled(16), seed=7),
            TARGET,
            block_branches=2500,
            repetitions=10,
            noise=NoiseModel.noisy(),
        )
        pool._ensure_built()
        shared = pool._shared
        assert shared is not None
        rng = np.random.default_rng(3)
        lift = rng.integers(
            0,
            len(shared.monoid.maps),
            size=(5, shared.plan_g.n_tracked),
        ).astype(np.int64)
        per_backend = {}
        for backend in BACKENDS:
            kernels.set_backend(backend)
            summaries = [shared.summarize(seed) for seed in range(4)]
            reads = shared.plan_g.read_levels(lift)
            per_backend[backend] = (summaries, reads)
        ref_summaries, ref_reads = per_backend["numpy"]
        for backend in BACKENDS:
            summaries, reads = per_backend[backend]
            for got, ref in zip(summaries, ref_summaries):
                assert int(got[0]) == int(ref[0])
                assert np.array_equal(got[1], ref[1])
                assert bool(got[2]) == bool(ref[2])
                assert int(got[3]) == int(ref[3])
            assert np.array_equal(reads, ref_reads)


class TestEndToEndDifferential:
    """Whole campaigns and trials are backend-independent, RNG included."""

    @pytest.mark.parametrize("preset", ALL_PRESETS)
    def test_campaign_and_stream_digest(self, preset):
        config = preset().scaled(16)
        factory = lambda: PhysicalCore(config, seed=7)  # noqa: E731
        kwargs = dict(
            n_blocks=8,
            block_branches=2000,
            repetitions=10,
            noise=NoiseModel.isolated(),
        )
        results = {}
        digests = {}
        for backend in BACKENDS:
            kernels.set_backend(backend)
            results[backend] = stability_experiment(
                factory, TARGET, backend="manycore", **kwargs
            )
            pool = ManycoreCampaignPool(
                factory,
                TARGET,
                block_branches=2000,
                repetitions=10,
                noise=NoiseModel.isolated(),
            )
            digests[backend] = pool.rng_digest
        for backend in BACKENDS:
            assert results[backend] == results["numpy"]
            assert digests[backend] == digests["numpy"]

    @pytest.mark.parametrize("preset", ALL_PRESETS)
    def test_batch_trial_and_core_rng(self, preset):
        """The batch engine's replay (read_levels_maps) is also pinned,
        along with the core RNG's final stream position."""
        config = preset().scaled(16)
        outs = {}
        for backend in BACKENDS:
            kernels.set_backend(backend)
            core = PhysicalCore(config, seed=9)
            spy = Process("spy")
            block = RandomizationBlock.generate(5, n_branches=1500)
            compiled = block.compile(core, spy)
            assessment = assess_block_batch(
                core,
                spy,
                compiled,
                TARGET,
                repetitions=8,
                noise=NoiseModel.noisy(),
            )
            outs[backend] = (assessment, rng_state_digest(core.rng))
        for backend in BACKENDS:
            assert outs[backend] == outs["numpy"]


class TestGroupedCampaigns:
    """Heterogeneous-group batching == per-trial reference."""

    def test_mixed_seed_factory_groups(self):
        """Cores seeded 7,3,7,3,7,9 form groups {3, 2, 1}: the two
        multi-member groups run shared, the singleton replays, and the
        list equals the process backend running the same factory-call
        sequence."""
        config = skylake().scaled(16)
        seq = [7, 3, 7, 3, 7, 9]

        def make_factory():
            seeds = iter(seq)
            return lambda: PhysicalCore(config, seed=next(seeds))

        kwargs = dict(
            n_blocks=6,
            block_branches=2000,
            repetitions=8,
            noise=NoiseModel.isolated(),
            seed_start=20,
        )
        reference = stability_experiment(
            make_factory(), TARGET, backend="process", **kwargs
        )
        obs.reset_scalar_fallbacks()
        reset_group_batch_stats()
        grouped = stability_experiment(
            make_factory(), TARGET, backend="manycore", **kwargs
        )
        assert grouped == reference
        assert obs.scalar_fallback_counts()["manycore"] == 1
        stats = group_batch_stats()
        assert stats["groups"] == 2
        assert stats["grouped"] == 5
        assert stats["singleton_groups"] == 1
        assert stats["scalar"] == 1

    def test_equal_spec_distinct_fsm_instances_grouped(self):
        """Distinct FSM instances with value-equal specs — previously a
        blanket per-payload fallback — now run as one shared group."""
        config = skylake().scaled(16)

        def factory():
            core = PhysicalCore(config, seed=5)
            pht = core.predictor.gshare.pht
            pht.fsm = dataclasses.replace(pht.fsm)
            return core

        assert manycore_supported(factory()) == "unshared_structure"
        kwargs = dict(
            n_blocks=6,
            block_branches=2000,
            repetitions=8,
            noise=NoiseModel.isolated(),
        )
        reference = stability_experiment(
            factory, TARGET, backend="process", **kwargs
        )
        obs.reset_scalar_fallbacks()
        reset_group_batch_stats()
        grouped = stability_experiment(
            factory, TARGET, backend="manycore", **kwargs
        )
        assert grouped == reference
        assert "manycore" not in obs.scalar_fallback_counts()
        stats = group_batch_stats()
        assert stats["groups"] == 1
        assert stats["grouped"] == 6
        assert stats["scalar"] == 0

    def test_grouped_kill_resume_bit_identical(self, tmp_path):
        config = haswell().scaled(16)

        def factory():
            core = PhysicalCore(config, seed=5)
            pht = core.predictor.gshare.pht
            pht.fsm = dataclasses.replace(pht.fsm)
            return core

        kwargs = dict(
            n_blocks=9,
            block_branches=2000,
            repetitions=10,
            noise=NoiseModel.isolated(),
        )
        expected = stability_experiment(
            factory, TARGET, backend="process", **kwargs
        )
        store = tmp_path / "campaign.ckpt"
        calls = {"n": 0}

        def dying_pre_trial(seed: int) -> None:
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("injected crash")

        with pytest.raises(RuntimeError):
            stability_experiment(
                factory,
                TARGET,
                backend="manycore",
                checkpoint=store,
                checkpoint_interval=3,
                pre_trial=dying_pre_trial,
                **kwargs,
            )
        resumed = stability_experiment(
            factory,
            TARGET,
            backend="manycore",
            checkpoint=store,
            checkpoint_interval=3,
            resume=True,
            **kwargs,
        )
        assert resumed == expected


class TestCompileCacheKeying:
    """The compiled-block LRU is keyed on the active kernel backend."""

    @pytest.mark.skipif(
        len(BACKENDS) < 2, reason="needs two loadable kernel backends"
    )
    def test_backend_switch_is_a_distinct_entry(self):
        clear_compile_cache()
        core = PhysicalCore(skylake().scaled(16), seed=1)
        spy = Process("spy")
        block = RandomizationBlock.generate(3, n_branches=1000)
        kernels.set_backend(BACKENDS[0])
        block.compile(core, spy)
        assert compile_cache_info()["misses"] == 1
        block.compile(core, spy)
        assert compile_cache_info()["hits"] == 1
        kernels.set_backend(BACKENDS[1])
        block.compile(core, spy)
        info = compile_cache_info()
        assert info["misses"] == 2
        assert info["size"] == 2
        # Switching back revalidates against the original entry, which
        # was not evicted by the other backend's insert.
        kernels.set_backend(BACKENDS[0])
        block.compile(core, spy)
        assert compile_cache_info()["hits"] == 2
        clear_compile_cache()


class TestDispatch:
    def test_env_knob_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "numpy")
        assert kernels.set_backend(None) == "numpy"

    def test_invalid_env_warns_and_uses_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "cuda")
        with pytest.warns(RuntimeWarning, match="auto selection"):
            installed = kernels.set_backend(None)
        assert installed in BACKENDS

    def test_unknown_explicit_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("gpu")

    def test_unavailable_backend_falls_back_loudly(self):
        missing = [b for b in ("numba", "cffi") if b not in BACKENDS]
        if not missing:
            pytest.skip("all compiled backends load here")
        obs.reset_scalar_fallbacks()
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            installed = kernels.set_backend(missing[0])
        assert installed == "numpy"
        assert obs.scalar_fallback_counts()["kernel_init"] == 1
        assert missing[0] in kernels.backend_init_errors()

    def test_dispatch_counts_increment(self):
        kernels.set_backend("numpy")
        kernels.reset_kernel_dispatch_counts()
        monoid, ids, _ = _monoid_inputs(skylake, n=32)
        kernels.reduce_ids(ids, monoid.compose_table, monoid.IDENTITY)
        assert kernels.kernel_dispatch_counts() == {"numpy": 1}

    def test_warmup_reports_active_backend(self):
        assert kernels.warmup() == kernels.active_backend()
