"""Shared fixtures.

Tests default to *scaled-down* microarchitectures (smaller tables) so
block compilation and calibration stay fast; behaviour-critical tests
that depend on full-size geometry build their own cores.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bpu import haswell, sandy_bridge, skylake
from repro.bpu.presets import PredictorConfig
from repro.cpu import PhysicalCore, Process


#: Scale factor applied to table sizes for fast tests.
TEST_SCALE = 16

#: Block size that reliably randomises the scaled-down tables.
SMALL_BLOCK = 8_000


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(params=["skylake", "haswell", "sandy_bridge"])
def preset_name(request):
    return request.param


@pytest.fixture
def full_config(preset_name) -> PredictorConfig:
    return {
        "skylake": skylake,
        "haswell": haswell,
        "sandy_bridge": sandy_bridge,
    }[preset_name]()


@pytest.fixture
def small_config(full_config) -> PredictorConfig:
    return full_config.scaled(TEST_SCALE)


@pytest.fixture
def core(small_config) -> PhysicalCore:
    return PhysicalCore(small_config, seed=7)


@pytest.fixture
def haswell_core() -> PhysicalCore:
    """A single deterministic small core for tests that don't need the
    per-preset matrix."""
    return PhysicalCore(haswell().scaled(TEST_SCALE), seed=7)


@pytest.fixture
def skylake_core() -> PhysicalCore:
    return PhysicalCore(skylake().scaled(TEST_SCALE), seed=7)


@pytest.fixture
def spy() -> Process:
    return Process("spy")


@pytest.fixture
def victim() -> Process:
    return Process("victim")
