"""PHT reverse engineering (paper §6.3, Figure 5, Equations 1-4)."""

from itertools import combinations

import numpy as np
import pytest

from repro.bpu import haswell
from repro.core.calibration import find_block
from repro.core.patterns import DecodedState
from repro.core.pht_map import (
    _encode,
    estimate_pht_size,
    hamming_ratio_curve,
    scan_states,
    scan_states_reference,
)
from repro.core.randomizer import RandomizationBlock
from repro.cpu import PhysicalCore, Process
from repro.system.noise import NoiseModel


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(64), seed=41)  # 256-entry PHT


@pytest.fixture
def spy():
    return Process("spy")


@pytest.fixture
def compiled(core, spy):
    block = RandomizationBlock.generate(5, n_branches=4000)
    return block.compile(core, spy)


class TestScanStates:
    def test_states_repeat_with_pht_period(self, core, spy, compiled):
        """Congruent addresses decode to identical states (Figure 5c)."""
        n = core.predictor.bimodal.pht.n_entries
        base = 0x300000
        addresses = list(range(base, base + 2 * n))
        states = scan_states(core, spy, addresses, compiled)
        assert states[:n] == states[n:]

    def test_adjacent_addresses_can_differ(self, core, spy, compiled):
        """Byte-granular indexing: neighbours live in different entries
        (Figure 5a)."""
        base = 0x300000
        states = scan_states(
            core, spy, list(range(base, base + 64)), compiled
        )
        assert len(set(states)) > 1

    def test_scan_restores_core(self, core, spy, compiled):
        checkpoint = core.checkpoint()
        scan_states(core, spy, list(range(0x300000, 0x300040)), compiled)
        after = core.checkpoint()
        assert (
            checkpoint["predictor"]["bimodal"] == after["predictor"]["bimodal"]
        ).all()

    def test_exercise_outcome_shifts_states(self, core, spy, compiled):
        base = 0x300000
        addresses = list(range(base, base + 32))
        plain = scan_states(core, spy, addresses, compiled)
        exercised = scan_states(
            core, spy, addresses, compiled, exercise_outcome=True
        )
        assert plain != exercised

    def test_decodes_mostly_known_states(self, core, spy, compiled):
        states = scan_states(
            core, spy, list(range(0x300000, 0x300100)), compiled
        )
        known = sum(s is not DecodedState.UNKNOWN for s in states)
        assert known / len(states) > 0.9

    @pytest.mark.parametrize("exercise_outcome", [None, True])
    def test_methods_agree(self, core, spy, compiled, exercise_outcome):
        """auto, batch and reference all produce the same state vector."""
        addresses = list(range(0x300000, 0x300000 + 96))
        vectors = [
            scan_states(
                core,
                spy,
                addresses,
                compiled,
                exercise_outcome=exercise_outcome,
                method=method,
            )
            for method in ("auto", "batch", "reference")
        ]
        assert vectors[0] == vectors[1] == vectors[2]

    def test_reference_full_restore_matches_delta(self, core, spy, compiled):
        addresses = list(range(0x300000, 0x300000 + 48))
        delta = scan_states_reference(core, spy, addresses, compiled)
        full = scan_states_reference(
            core, spy, addresses, compiled, full_restore=True
        )
        assert delta == full


class TestHammingCurve:
    def _states(self, core, spy, compiled, length):
        return scan_states(
            core, spy, list(range(0x300000, 0x300000 + length)), compiled
        )

    def test_ratio_minimal_at_true_period(self, core, spy, compiled):
        n = core.predictor.bimodal.pht.n_entries
        states = self._states(core, spy, compiled, 4 * n)
        curve = hamming_ratio_curve(
            states, [n // 2, n - 3, n, n + 5, 2 * n]
        )
        assert curve[n] == 0.0
        assert curve[n] <= min(curve.values())

    def test_non_period_windows_have_positive_ratio(self, core, spy, compiled):
        n = core.predictor.bimodal.pht.n_entries
        states = self._states(core, spy, compiled, 4 * n)
        curve = hamming_ratio_curve(states, [n - 3, n + 5])
        assert curve[n - 3] > 0.0 and curve[n + 5] > 0.0

    def test_windows_too_large_are_skipped(self):
        states = [DecodedState.SN] * 10
        curve = hamming_ratio_curve(states, [6])  # only one subvector fits
        assert curve == {}

    def test_matches_scalar_reference(self):
        """The vectorised curve equals a per-pair scalar recomputation,
        including the sampled-pair RNG draws (same order, same values)."""
        rng = np.random.default_rng(17)
        states = [
            list(DecodedState)[i]
            for i in rng.integers(0, len(DecodedState), size=230)
        ]
        windows = [3, 5, 8, 16, 40]
        max_pairs = 12
        curve = hamming_ratio_curve(
            states,
            windows,
            rng=np.random.default_rng(99),
            max_pairs=max_pairs,
        )
        reference_rng = np.random.default_rng(99)
        encoded = _encode(states)
        expected = {}
        for w in windows:
            n_sub = len(encoded) // w
            if n_sub < 2:
                continue
            subvectors = encoded[: n_sub * w].reshape(n_sub, w)
            all_pairs = list(combinations(range(n_sub), 2))
            if len(all_pairs) > max_pairs:
                chosen = reference_rng.choice(
                    len(all_pairs), size=max_pairs, replace=False
                )
                pairs = [all_pairs[i] for i in chosen]
            else:
                pairs = all_pairs
            distances = [
                int((subvectors[a] != subvectors[b]).sum()) for a, b in pairs
            ]
            expected[w] = float(np.mean(distances)) / w
        assert curve == expected


class TestEstimateSize:
    def test_recovers_true_pht_size(self, core, spy, compiled):
        """Equation 4 recovers the table size — the paper's 16384 result,
        here against a scaled-down 256-entry table."""
        n = core.predictor.bimodal.pht.n_entries
        states = scan_states(
            core,
            spy,
            list(range(0x300000, 0x300000 + 4 * n)),
            compiled,
        )
        estimate = estimate_pht_size(
            states, windows=[2 ** k for k in range(3, 11)]
        )
        assert estimate == n

    def test_multiple_minima_pick_smallest_window(self):
        # A vector with period 4 has zero ratio at windows 4 and 8.
        pattern = [
            DecodedState.SN,
            DecodedState.ST,
            DecodedState.WN,
            DecodedState.WT,
        ] * 8
        assert estimate_pht_size(pattern, windows=[4, 8]) == 4

    def test_too_short_scan_raises(self):
        with pytest.raises(ValueError):
            estimate_pht_size([DecodedState.SN] * 3, windows=[16])
