"""Probe patterns and the Table 1 state dictionary."""

import pytest
from hypothesis import given, strategies as st

from repro.bpu.fsm import State, skylake_fsm, textbook_2bit_fsm
from repro.core.patterns import (
    DecodedState,
    ProbeResult,
    decode_state,
    expected_probe_pattern,
    state_signatures,
)


class TestProbeResult:
    def test_pattern_rendering(self):
        assert ProbeResult(True, True).pattern == "HH"
        assert ProbeResult(False, True).pattern == "MH"
        assert ProbeResult(True, False).pattern == "HM"
        assert ProbeResult(False, False).pattern == "MM"

    def test_from_pattern_roundtrip(self):
        for pattern in ("HH", "MH", "HM", "MM"):
            assert ProbeResult.from_pattern(pattern).pattern == pattern

    def test_from_pattern_rejects_garbage(self):
        with pytest.raises(ValueError):
            ProbeResult.from_pattern("XY")
        with pytest.raises(ValueError):
            ProbeResult.from_pattern("M")


class TestExpectedProbePattern:
    def test_empty_probe(self):
        fsm = textbook_2bit_fsm()
        pattern, level = expected_probe_pattern(fsm, 3, ())
        assert pattern == "" and level == 3

    def test_pattern_and_final_level(self):
        fsm = textbook_2bit_fsm()
        # From ST, two not-taken probes: miss (->WT), miss (->WN).
        pattern, level = expected_probe_pattern(fsm, 3, (False, False))
        assert pattern == "MM" and level == 1

    @given(
        outcomes=st.lists(st.booleans(), max_size=10),
        start=st.integers(0, 3),
    )
    def test_length_matches_outcomes(self, outcomes, start):
        fsm = textbook_2bit_fsm()
        pattern, _ = expected_probe_pattern(fsm, start, outcomes)
        assert len(pattern) == len(outcomes)


class TestSignatures:
    def test_textbook_table(self):
        sigs = state_signatures(textbook_2bit_fsm())
        assert sigs[("HH", "MM")] is DecodedState.ST
        assert sigs[("HH", "MH")] is DecodedState.WT
        assert sigs[("MH", "HH")] is DecodedState.WN
        assert sigs[("MM", "HH")] is DecodedState.SN
        assert sigs[("HH", "HH")] is DecodedState.DIRTY

    def test_skylake_table_keeps_not_taken_side(self):
        sigs = state_signatures(skylake_fsm())
        assert sigs[("MH", "HH")] is DecodedState.WN
        assert sigs[("MM", "HH")] is DecodedState.SN

    def test_every_architectural_state_is_decodable(self):
        for factory in (textbook_2bit_fsm, skylake_fsm):
            fsm = factory()
            decoded = set(state_signatures(fsm).values())
            for state in (DecodedState.SN, DecodedState.WN, DecodedState.ST):
                assert state in decoded

    def test_skylake_post_st_weak_taken_reads_as_st(self):
        """The paper's indistinguishability: WT reached from ST decodes ST."""
        fsm = skylake_fsm()
        level = fsm.step(fsm.saturate(True), False)  # ST -> sticky WT
        tt, _ = expected_probe_pattern(fsm, level, (True, True))
        nn, _ = expected_probe_pattern(fsm, level, (False, False))
        assert decode_state(fsm, tt, nn) is DecodedState.ST


class TestDecodeState:
    def test_unknown_for_unlisted_signature(self):
        fsm = textbook_2bit_fsm()
        assert decode_state(fsm, "HM", "HM") is DecodedState.UNKNOWN

    def test_dirty(self):
        fsm = textbook_2bit_fsm()
        assert decode_state(fsm, "HH", "HH") is DecodedState.DIRTY

    def test_decode_matches_ground_truth_for_all_states(self):
        """Prime an FSM into each state and decode it via probes."""
        for factory in (textbook_2bit_fsm, skylake_fsm):
            fsm = factory()
            for state in State:
                level = fsm.level_for(state)
                tt, _ = expected_probe_pattern(fsm, level, (True, True))
                nn, _ = expected_probe_pattern(fsm, level, (False, False))
                decoded = decode_state(fsm, tt, nn)
                assert decoded.value == state.name

    def test_from_state(self):
        assert DecodedState.from_state(State.ST) is DecodedState.ST
        assert DecodedState.from_state(State.WN) is DecodedState.WN
