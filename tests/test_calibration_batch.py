"""Differential tests for the vectorised calibration engine.

Three invariants are pinned here:

* **replay mode** — :func:`assess_block_batch` called with the scalar
  signature (``repetitions=``/``noise=``) is a bit-exact drop-in for
  :func:`assess_block`: same :class:`BlockAssessment`, same post-call
  core state, same RNG stream position, same mitigation hook state —
  on every preset and under every fast-path-safe mitigation stack;
* **plan mode** — both engines produce identical assessments from the
  same pre-drawn :class:`TrialPlan`, and the batch engine leaves the
  core untouched (checkpoint-equal before/after);
* **worker-count determinism** — ``stability_experiment`` and
  ``find_block`` return bit-identical results at any ``workers`` count.
"""

import numpy as np
import pytest

from repro.bpu.presets import haswell, sandy_bridge, skylake
from repro.core.calibration import (
    assess_block,
    assess_block_batch,
    draw_trial_plan,
    find_block,
    stability_experiment,
)
from repro.core.calibration import _dominant
from repro.core.patterns import DecodedState
from repro.core.randomizer import RandomizationBlock
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.mitigations import (
    BpuPartitioning,
    BtbFlushOnContextSwitch,
    NoisyPerformanceCounters,
    NoisyTimer,
    PhtIndexRandomization,
    StaticPredictionForSensitiveBranches,
    StochasticFSM,
)
from repro.parallel import fork_available
from repro.system.noise import NoiseModel

PRESETS = {
    "skylake": skylake,
    "haswell": haswell,
    "sandy_bridge": sandy_bridge,
}

TARGET = 0x7F0000001234

#: Fast-path-safe mitigation stacks; each entry is ``core -> [mitigations]``.
STACKS = {
    "none": lambda core: [],
    "static": lambda core: [StaticPredictionForSensitiveBranches()],
    "rekey": lambda core: [
        PhtIndexRandomization(np.random.default_rng(5), rekey_period=37)
    ],
    "partition": lambda core: [
        BpuPartitioning.by_process(core.predictor.bimodal.pht.n_entries)
    ],
    "timer+btb": lambda core: [
        NoisyTimer(sigma=25.0),
        BtbFlushOnContextSwitch(),
    ],
    "kitchen": lambda core: [
        PhtIndexRandomization(np.random.default_rng(9), rekey_period=13),
        NoisyTimer(sigma=10.0),
    ],
}


def build(preset_name, stack_name, *, protect=False, seed=3):
    core = PhysicalCore(PRESETS[preset_name]().scaled(256), seed=seed)
    spy = Process("spy", pid=90001)
    if protect:
        spy.protect_branch(TARGET)
    for mitigation in STACKS[stack_name](core):
        core.install_mitigation(mitigation)
    block = RandomizationBlock.generate(7, n_branches=1500)
    compiled = block.compile(core, spy)
    # Warm history: the engines must agree from arbitrary prior state,
    # not just a pristine core.
    for k, taken in enumerate([1, 0, 1, 1, 0, 1]):
        core.execute_branch(spy, TARGET + (k % 3), bool(taken))
    return core, spy, compiled


def eq(a, b):
    """Deep equality across the nested checkpoint structures."""
    if isinstance(a, dict):
        return set(a) == set(b) and all(eq(a[k], b[k]) for k in a)
    if isinstance(a, tuple):
        return len(a) == len(b) and all(eq(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    return a == b


def run_replay(engine, preset_name, stack_name, *, protect=False, rng=None):
    core, spy, compiled = build(preset_name, stack_name, protect=protect)
    assessment = engine(
        core,
        spy,
        compiled,
        TARGET,
        repetitions=24,
        noise=NoiseModel.isolated(),
        rng=rng() if rng is not None else None,
    )
    state = core.checkpoint(full=True)
    stream_position = core.rng.integers(1 << 62)
    hook_key = core.mitigations.pht_key(spy)
    return assessment, state, stream_position, hook_key


class TestReplayDifferential:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    @pytest.mark.parametrize("stack_name", sorted(STACKS))
    def test_batch_is_bit_exact_drop_in(self, preset_name, stack_name):
        scalar = run_replay(assess_block, preset_name, stack_name)
        batch = run_replay(assess_block_batch, preset_name, stack_name)
        assert batch[0] == scalar[0]  # assessment
        assert eq(batch[1], scalar[1])  # full core state
        assert batch[2] == scalar[2]  # core RNG stream position
        assert batch[3] == scalar[3]  # mitigation hook state

    def test_protected_target_branch(self):
        scalar = run_replay(assess_block, "skylake", "static", protect=True)
        batch = run_replay(
            assess_block_batch, "skylake", "static", protect=True
        )
        assert batch[0] == scalar[0]
        assert eq(batch[1], scalar[1])

    def test_decoupled_observation_rng(self):
        rng = lambda: np.random.default_rng(123)
        scalar = run_replay(assess_block, "haswell", "rekey", rng=rng)
        batch = run_replay(assess_block_batch, "haswell", "rekey", rng=rng)
        assert batch[0] == scalar[0]
        assert eq(batch[1], scalar[1])
        assert batch[2:] == scalar[2:]

    @pytest.mark.parametrize(
        "mitigation",
        [NoisyPerformanceCounters(1), StochasticFSM(0.25)],
        ids=["noisy_counters", "stochastic_fsm"],
    )
    def test_observation_mitigations_fall_back_scalar_exact(self, mitigation):
        """Unsupported mitigations: batch == scalar via the fallback,
        consuming the identical core RNG stream."""
        results = []
        for engine in (assess_block, assess_block_batch):
            core, spy, compiled = build("haswell", "none")
            core.install_mitigation(mitigation)
            assessment = engine(
                core,
                spy,
                compiled,
                TARGET,
                repetitions=16,
                noise=NoiseModel.isolated(),
            )
            results.append((assessment, core.rng.integers(1 << 62)))
        assert results[0] == results[1]


class TestPlanDifferential:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    @pytest.mark.parametrize(
        "noise_name", ["silent", "isolated", "noisy"]
    )
    def test_same_plan_same_assessment(self, preset_name, noise_name):
        noise = getattr(NoiseModel, noise_name)()

        core1, spy1, compiled1 = build(preset_name, "none", seed=11)
        plan1 = draw_trial_plan(
            np.random.default_rng(42), core1, repetitions=30, noise=noise
        )
        scalar = assess_block(core1, spy1, compiled1, TARGET, plan=plan1)

        core2, spy2, compiled2 = build(preset_name, "none", seed=11)
        before = core2.checkpoint(full=True)
        plan2 = draw_trial_plan(
            np.random.default_rng(42), core2, repetitions=30, noise=noise
        )
        batch = assess_block_batch(core2, spy2, compiled2, TARGET, plan=plan2)
        after = core2.checkpoint(full=True)

        assert batch == scalar
        # Plan-mode batch assessment is a pure function: the core is
        # left exactly as found.
        assert eq(before, after)

    @pytest.mark.parametrize(
        "stack_name", ["static", "rekey", "partition", "timer+btb"]
    )
    def test_under_mitigation_stacks(self, stack_name):
        noise = NoiseModel.isolated()
        assessments = []
        for engine in (assess_block, assess_block_batch):
            core, spy, compiled = build("skylake", stack_name, seed=11)
            plan = draw_trial_plan(
                np.random.default_rng(42), core, repetitions=30, noise=noise
            )
            assessments.append(engine(core, spy, compiled, TARGET, plan=plan))
        assert assessments[0] == assessments[1]

    def test_plan_repetitions_property(self):
        core, _, _ = build("haswell", "none")
        plan = draw_trial_plan(
            np.random.default_rng(0),
            core,
            repetitions=12,
            noise=NoiseModel.silent(),
        )
        assert plan.repetitions == 12


def small_stability(workers, *, fast=True):
    return stability_experiment(
        lambda: PhysicalCore(haswell().scaled(16), seed=6),
        0x30_0006D,
        n_blocks=8,
        block_branches=1200,
        repetitions=16,
        noise=NoiseModel.isolated(),
        workers=workers,
        fast=fast,
    )


class TestWorkerDeterminism:
    def test_stability_experiment_bit_identical(self):
        serial = small_stability(1)
        assert len(serial) == 8
        if not fork_available():
            pytest.skip("platform cannot fork workers")
        assert small_stability(4) == serial

    def test_stability_engines_agree(self):
        assert small_stability(1, fast=False) == small_stability(1, fast=True)

    @pytest.mark.skipif(
        not fork_available(), reason="platform cannot fork workers"
    )
    def test_find_block_pooled_worker_invariant(self):
        blocks = []
        for workers in (1, 3):
            core = PhysicalCore(haswell().scaled(16), seed=9)
            compiled = find_block(
                core,
                Process("spy"),
                0x30_0006D,
                DecodedState.SN,
                block_branches=2000,
                repetitions=16,
                noise=NoiseModel.isolated(),
                rng=np.random.default_rng(17),
                workers=workers,
            )
            blocks.append(compiled.block.seed)
        assert blocks[0] == blocks[1]


class TestDominantTieBreak:
    def test_tie_breaks_on_pattern_not_order(self):
        assert _dominant(["MM", "HH"]) == _dominant(["HH", "MM"])
        pattern, share = _dominant(["HH", "MM"])
        assert pattern == "MM"  # lexicographically largest among equals
        assert share == 0.5

    def test_majority_wins(self):
        assert _dominant(["HH", "HH", "MM"]) == ("HH", 2 / 3)

    def test_four_way_tie(self):
        pattern, share = _dominant(["MM", "MH", "HM", "HH"])
        assert pattern == "MM"
        assert share == 0.25
