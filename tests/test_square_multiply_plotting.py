"""Square-and-multiply victim and the plotting helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import bar_chart, curve, scatter
from repro.bpu import haswell
from repro.core.attack import BranchScope
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting
from repro.victims import SquareAndMultiplyVictim, square_and_multiply_pow


class TestSquareAndMultiplyPow:
    @given(
        base=st.integers(0, 10_000),
        exponent=st.integers(0, 10_000),
        modulus=st.integers(2, 10_000),
    )
    @settings(max_examples=100)
    def test_matches_builtin_pow(self, base, exponent, modulus):
        assert square_and_multiply_pow(base, exponent, modulus) == pow(
            base, exponent, modulus
        )

    def test_hook_sees_exponent_bits(self):
        bits = []
        square_and_multiply_pow(3, 0b11001, 1009, branch_hook=bits.append)
        assert bits == [True, True, False, False, True]

    def test_validation(self):
        with pytest.raises(ValueError):
            square_and_multiply_pow(2, 3, 0)
        with pytest.raises(ValueError):
            square_and_multiply_pow(2, -3, 7)


class TestSquareAndMultiplyVictim:
    def test_full_key_recovery(self):
        core = PhysicalCore(haswell().scaled(16), seed=103)
        key = 0xDEADBEEF
        victim = SquareAndMultiplyVictim(key)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=8000,
        )
        bits = attack.spy_on_bits(lambda: victim.step(core), victim.n_bits)
        recovered = 0
        for bit in bits:
            recovered = (recovered << 1) | int(bit)
        assert recovered == key
        assert victim.result == pow(victim.base, key, victim.modulus)

    def test_step_protocol(self):
        core = PhysicalCore(haswell().scaled(16), seed=104)
        victim = SquareAndMultiplyVictim(0b101)
        assert victim.n_bits == 3
        for _ in range(3):
            victim.step(core)
        assert victim.finished
        with pytest.raises(RuntimeError):
            victim.step(core)
        victim.begin()
        assert not victim.finished

    def test_validation(self):
        with pytest.raises(ValueError):
            SquareAndMultiplyVictim(0)


class TestPlotting:
    def test_bar_chart_renders_all_items(self):
        text = bar_chart(
            [("hit", 72.0), ("miss", 110.0)], unit=" cyc", title="Figure 7"
        )
        assert "Figure 7" in text
        assert "hit" in text and "miss" in text
        # The larger value gets the longer bar.
        hit_line = next(l for l in text.splitlines() if l.startswith("hit"))
        miss_line = next(l for l in text.splitlines() if l.startswith("miss"))
        assert miss_line.count("█") > hit_line.count("█")

    def test_bar_chart_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_curve_shape(self):
        text = curve(
            [(i, float(10 - i)) for i in range(10)], height=5, title="decay"
        )
        lines = text.splitlines()
        assert lines[0] == "decay"
        assert len([l for l in lines if "█" in l]) == 5

    def test_curve_empty_raises(self):
        with pytest.raises(ValueError):
            curve([])

    def test_scatter_places_extremes(self):
        text = scatter(
            [(0.0, 0.0), (1.0, 1.0)],
            width=10,
            height=5,
            x_range=(0, 1),
            y_range=(0, 1),
        )
        rows = [l for l in text.splitlines() if "│" in l]
        assert rows[0].rstrip().endswith("o")  # top-right = (1,1)
        assert rows[-1].split("│")[1][0] == "o"  # bottom-left = (0,0)

    def test_scatter_degenerate_ranges(self):
        text = scatter([(0.5, 0.5), (0.5, 0.5)])
        assert "o" in text

    def test_scatter_empty_raises(self):
        with pytest.raises(ValueError):
            scatter([])
