"""JPEG-like codec: DCT math, compression round-trip, IDCT leak structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bpu import haswell
from repro.cpu import PhysicalCore
from repro.victims.dct import (
    BLOCK,
    dct2_8x8,
    dct_matrix,
    dequantize,
    idct2_8x8,
    quantize,
)
from repro.victims.jpeg import (
    JpegDecoderVictim,
    decode_image,
    encode_image,
)


class TestDCT:
    def test_matrix_is_orthonormal(self):
        c = dct_matrix()
        assert np.allclose(c @ c.T, np.eye(BLOCK), atol=1e-12)

    def test_roundtrip_is_identity(self, rng):
        block = rng.uniform(-128, 127, (BLOCK, BLOCK))
        assert np.allclose(idct2_8x8(dct2_8x8(block)), block, atol=1e-9)

    def test_dc_coefficient_is_scaled_mean(self):
        block = np.full((BLOCK, BLOCK), 100.0)
        coefficients = dct2_8x8(block)
        assert coefficients[0, 0] == pytest.approx(100.0 * 8)
        assert np.allclose(coefficients.flatten()[1:], 0, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            dct2_8x8(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            idct2_8x8(np.zeros((4, 4)))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25)
    def test_parseval_energy_preserved(self, seed):
        block = np.random.default_rng(seed).uniform(-100, 100, (BLOCK, BLOCK))
        assert np.sum(block**2) == pytest.approx(
            np.sum(dct2_8x8(block) ** 2), rel=1e-9
        )

    def test_quantize_dequantize_bounded_error(self, rng):
        coefficients = rng.uniform(-200, 200, (BLOCK, BLOCK))
        from repro.victims.dct import STANDARD_LUMINANCE_QTABLE as q
        restored = dequantize(quantize(coefficients))
        assert (np.abs(restored - coefficients) <= q / 2 + 1e-9).all()


class TestCodec:
    def _image(self, rng, shape=(24, 32)):
        # Smooth gradient + noise: mixes sparse and dense blocks.
        rows, cols = shape
        y, x = np.mgrid[0:rows, 0:cols]
        return np.clip(
            120 + 40 * np.sin(x / 6.0) + rng.normal(0, 6, shape), 0, 255
        )

    def test_roundtrip_quality(self, rng):
        image = self._image(rng)
        decoded = decode_image(encode_image(image))
        rmse = np.sqrt(np.mean((decoded - image) ** 2))
        assert rmse < 12.0

    def test_handles_non_multiple_of_8(self, rng):
        image = self._image(rng, (13, 21))
        encoded = encode_image(image)
        assert decode_image(encoded).shape == (13, 21)
        assert encoded.block_grid == (2, 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            encode_image(np.zeros((4, 4, 3)))

    def test_flat_image_gives_sparse_blocks(self):
        encoded = encode_image(np.full((16, 16), 130.0))
        assert encoded.zero_row_map()[:, :, 1:].all()

    def test_nonzero_counts_track_complexity(self, rng):
        flat = encode_image(np.full((8, 8), 99.0))
        busy = encode_image(rng.uniform(0, 255, (8, 8)))
        assert busy.nonzero_counts().sum() > flat.nonzero_counts().sum()


class TestDecoderVictim:
    def test_branch_schedule_length(self, rng):
        image = encode_image(rng.uniform(0, 255, (16, 24)))
        victim = JpegDecoderVictim(image)
        blocks = image.block_grid[0] * image.block_grid[1]
        assert victim.steps_remaining() == blocks * victim.branches_per_block

    def test_row_branch_directions_equal_zero_map(self, rng):
        """The leak: row-check branch direction == row non-zero."""
        core = PhysicalCore(haswell().scaled(16), seed=3)
        image = encode_image(self_image(rng))
        victim = JpegDecoderVictim(image)
        taken = []
        original = core.execute_branch

        def recording(process, address, taken_flag=None, target=None, **kw):
            flag = kw.get("taken", taken_flag)
            if address == victim.row_branch_address:
                taken.append(flag)
            return original(process, address, flag, target)

        core.execute_branch = recording
        while not victim.finished:
            victim.step(core)
        expected = (~image.zero_row_map()).flatten().tolist()
        assert taken == expected

    def test_pixels_available_after_decode(self, rng):
        core = PhysicalCore(haswell().scaled(16), seed=3)
        image = encode_image(self_image(rng))
        victim = JpegDecoderVictim(image)
        assert victim.pixels is None
        while not victim.finished:
            victim.step(core)
        assert victim.pixels is not None
        assert np.allclose(victim.pixels, decode_image(image))

    def test_step_after_finish_raises(self, rng):
        core = PhysicalCore(haswell().scaled(16), seed=3)
        victim = JpegDecoderVictim(encode_image(np.full((8, 8), 1.0)))
        while not victim.finished:
            victim.step(core)
        with pytest.raises(RuntimeError):
            victim.step(core)


def self_image(rng, shape=(16, 16)):
    rows, cols = shape
    y, x = np.mgrid[0:rows, 0:cols]
    return np.clip(
        120 + 50 * np.sin(x / 5.0) + rng.normal(0, 8, shape), 0, 255
    )
