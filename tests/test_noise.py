"""System noise: exact vs. vectorised equivalence, models, FSM step folding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bpu import haswell
from repro.bpu.fsm import textbook_2bit_fsm
from repro.cpu import PhysicalCore, Process
from repro.system.noise import (
    NoiseModel,
    apply_fsm_steps,
    inject_noise,
    noise_branches,
)


class TestNoiseModel:
    def test_silent_produces_nothing(self, rng):
        model = NoiseModel.silent()
        assert all(model.gap_branches(rng) == 0 for _ in range(20))

    def test_noisy_exceeds_isolated_on_average(self, rng):
        isolated = np.mean(
            [NoiseModel.isolated().gap_branches(rng) for _ in range(300)]
        )
        noisy = np.mean(
            [NoiseModel.noisy().gap_branches(rng) for _ in range(300)]
        )
        assert noisy > isolated

    def test_quiesced_is_quietest(self, rng):
        quiesced = np.mean(
            [NoiseModel.quiesced().gap_branches(rng) for _ in range(300)]
        )
        isolated = np.mean(
            [NoiseModel.isolated().gap_branches(rng) for _ in range(300)]
        )
        assert quiesced < isolated

    def test_bursts_occur(self):
        rng = np.random.default_rng(0)
        model = NoiseModel(ambient_branches=0, burst_prob=0.5, burst_size=100)
        draws = [model.gap_branches(rng) for _ in range(200)]
        assert 0 in draws and 100 in draws


class TestNoiseBranches:
    def test_yields_requested_count(self, rng):
        branches = list(noise_branches(rng, 50))
        assert len(branches) == 50

    def test_addresses_inside_region(self, rng):
        for address, taken in noise_branches(rng, 100, region=(100, 200)):
            assert 100 <= address < 200
            assert isinstance(taken, bool)


class TestApplyFsmSteps:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 7), st.booleans()),
            max_size=80,
        )
    )
    @settings(max_examples=50)
    def test_matches_sequential_scalar_application(self, ops):
        """The vectorised fold must equal the naive per-op loop."""
        fsm = textbook_2bit_fsm()
        levels_vec = np.ones(8, dtype=np.int8)
        levels_ref = np.ones(8, dtype=np.int8)
        indices = np.array([i for i, _ in ops], dtype=np.int64)
        outcomes = np.array([t for _, t in ops], dtype=bool)
        apply_fsm_steps(levels_vec, fsm._step_arr, indices, outcomes)
        for idx, taken in ops:
            levels_ref[idx] = fsm.step(int(levels_ref[idx]), taken)
        assert (levels_vec == levels_ref).all()

    def test_empty_sequence_is_noop(self):
        fsm = textbook_2bit_fsm()
        levels = np.ones(4, dtype=np.int8)
        apply_fsm_steps(
            levels,
            fsm._step_arr,
            np.array([], dtype=np.int64),
            np.array([], dtype=bool),
        )
        assert (levels == 1).all()


class TestInjectNoise:
    def test_zero_branches_is_noop(self):
        core = PhysicalCore(haswell().scaled(16), seed=1)
        before = core.checkpoint()
        inject_noise(core, 0, core.rng)
        after = core.checkpoint()
        assert (before["predictor"]["bimodal"] == after["predictor"]["bimodal"]).all()
        assert before["clock"] == after["clock"]

    def test_perturbs_bimodal_pht(self):
        core = PhysicalCore(haswell().scaled(16), seed=1)
        before = core.predictor.bimodal.pht.snapshot()
        inject_noise(core, 5000, core.rng)
        after = core.predictor.bimodal.pht.snapshot()
        assert (before != after).any()

    def test_advances_clock(self):
        core = PhysicalCore(haswell().scaled(16), seed=1)
        inject_noise(core, 123, core.rng)
        assert core.clock.now == 123

    def test_statistically_matches_exact_path(self):
        """Fast and exact noise must push PHT entries around similarly.

        Compares the distribution of per-entry level *changes* after the
        same number of noise branches; means should agree within noise.
        """
        config = haswell().scaled(16)
        n = 4000
        deltas = {}
        for mode in ("exact", "fast"):
            core = PhysicalCore(config, seed=2)
            rng = np.random.default_rng(77)
            core.predictor.bimodal.pht.randomize(rng)
            before = core.predictor.bimodal.pht.snapshot().astype(int)
            if mode == "exact":
                noise_process = Process("noise")
                for address, taken in noise_branches(rng, n):
                    core.execute_branch(noise_process, address, taken)
            else:
                inject_noise(core, n, rng)
            after = core.predictor.bimodal.pht.snapshot().astype(int)
            deltas[mode] = np.abs(after - before).mean()
        assert deltas["fast"] == pytest.approx(deltas["exact"], rel=0.35)

    def test_randomizes_ghr(self):
        core = PhysicalCore(haswell().scaled(16), seed=1)
        values = set()
        for _ in range(10):
            inject_noise(core, 100, core.rng)
            values.add(core.predictor.ghr.value)
        assert len(values) > 3

    def test_can_evict_bit_entries(self):
        core = PhysicalCore(haswell().scaled(16), seed=1)
        # Insert a branch whose set lies inside the noise region's reach.
        victim = 0x7F0000000010
        core.predictor.bit.insert(victim)
        evicted = False
        for _ in range(30):
            inject_noise(core, 2000, core.rng)
            if not core.predictor.bit.contains(victim):
                evicted = True
                break
        assert evicted
