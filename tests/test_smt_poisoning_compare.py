"""SMT covert channel, branch poisoning, and the early-exit comparator."""

import numpy as np
import pytest

from repro.bpu import haswell, skylake
from repro.core.attack import BranchScope
from repro.core.covert import error_rate
from repro.core.covert_smt import SMTConfig, SMTCovertChannel
from repro.core.poisoning import (
    poison_branch,
    poisoning_experiment,
)
from repro.cpu import PhysicalCore, Process
from repro.system.noise import NoiseModel
from repro.system.scheduler import AttackScheduler, NoiseSetting
from repro.victims.compare import EarlyExitComparatorVictim, crack_secret


class TestSMTCovertChannel:
    def _channel(self, **kwargs):
        core = PhysicalCore(haswell().scaled(16), seed=91)
        victim = Process("victim")
        spy = Process("spy")
        channel = SMTCovertChannel.establish(
            core, victim, spy, noise=NoiseModel.silent(), **kwargs
        )
        return core, channel

    def test_transmits_with_interleaving_victim(self):
        _, channel = self._channel()
        bits = np.random.default_rng(0).integers(0, 2, 120).tolist()
        received = channel.transmit(bits)
        assert error_rate(bits, received) < 0.05

    def test_higher_interleave_rate_still_works(self):
        _, channel = self._channel(
            config=SMTConfig(victim_rate=2.5, samples_per_bit=7)
        )
        bits = np.random.default_rng(1).integers(0, 2, 80).tolist()
        received = channel.transmit(bits)
        assert error_rate(bits, received) < 0.10

    def test_single_sample_noisier_than_voted(self):
        _, voted = self._channel(
            config=SMTConfig(victim_rate=1.5, samples_per_bit=5)
        )
        _, single = self._channel(
            config=SMTConfig(victim_rate=1.5, samples_per_bit=1)
        )
        bits = np.random.default_rng(2).integers(0, 2, 150).tolist()
        voted_err = error_rate(bits, voted.transmit(bits))
        single_err = error_rate(bits, single.transmit(bits))
        assert voted_err <= single_err

    def test_no_victim_activity_outside_transmission(self):
        core, channel = self._channel()
        assert channel._current_bit is None
        channel.transmit_bit(1)
        assert channel._current_bit is None


class TestPoisoning:
    def test_poison_saturates_entry(self):
        from repro.bpu.fsm import State

        core = PhysicalCore(haswell().scaled(16), seed=92)
        attacker = Process("attacker")
        address = 0x30_0006D
        poison_branch(core, attacker, address, True)
        assert core.predictor.bimodal_state(address) is State.ST
        poison_branch(core, attacker, address, False)
        assert core.predictor.bimodal_state(address) is State.SN

    @pytest.mark.parametrize("direction", [True, False])
    def test_poisoning_forces_mispredictions(self, direction):
        core = PhysicalCore(haswell().scaled(16), seed=92)
        result = poisoning_experiment(
            core,
            Process("attacker"),
            Process("victim"),
            0x30_0006D,
            direction,
            rounds=100,
            scheduler=AttackScheduler(core, NoiseSetting.SILENT),
        )
        assert result.baseline_misprediction_rate < 0.05
        assert result.poisoned_misprediction_rate > 0.9
        assert result.amplification > 10

    def test_skylake_strength_must_cover_levels(self):
        """The 5-level Skylake counter needs >= 5 pushes to pin from any
        state; the default strength must still force mispredictions."""
        core = PhysicalCore(skylake().scaled(16), seed=93)
        result = poisoning_experiment(
            core,
            Process("attacker"),
            Process("victim"),
            0x30_0006D,
            True,
            rounds=60,
            scheduler=AttackScheduler(core, NoiseSetting.SILENT),
        )
        assert result.poisoned_misprediction_rate > 0.9


class TestComparatorVictim:
    def test_check_plans_early_exit(self):
        victim = EarlyExitComparatorVictim([1, 2, 3])
        victim.submit_guess([1, 9, 3])
        # Two branches: match at 0 (taken), mismatch at 1 (not-taken).
        assert len(victim._pending) == 2
        assert victim.last_result is False

    def test_full_match(self):
        victim = EarlyExitComparatorVictim([1, 2, 3])
        victim.submit_guess([1, 2, 3])
        assert len(victim._pending) == 3
        assert victim.last_result is True

    def test_step_executes_directions(self):
        core = PhysicalCore(haswell().scaled(16), seed=94)
        victim = EarlyExitComparatorVictim([7, 7])
        victim.submit_guess([7, 0])
        directions = []
        original = core.execute_branch

        def recording(process, address, taken, target=None):
            directions.append(taken)
            return original(process, address, taken, target)

        core.execute_branch = recording
        while not victim.check_finished:
            victim.step(core)
        assert directions == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyExitComparatorVictim([])
        victim = EarlyExitComparatorVictim([1])
        with pytest.raises(ValueError):
            victim.submit_guess([1, 2])
        with pytest.raises(RuntimeError):
            victim.step(PhysicalCore(haswell().scaled(16), seed=0))


class TestCrackSecret:
    def test_recovers_pin(self):
        core = PhysicalCore(haswell().scaled(16), seed=95)
        secret = [3, 1, 4, 1, 5]
        victim = EarlyExitComparatorVictim(secret)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=8000,
        )
        recovered = crack_secret(
            attack, victim, core, alphabet=list(range(10))
        )
        assert recovered == secret

    def test_recovers_under_isolated_noise(self):
        core = PhysicalCore(haswell().scaled(16), seed=96)
        secret = [9, 0, 2]
        victim = EarlyExitComparatorVictim(secret)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.ISOLATED,
            block_branches=8000,
        )
        recovered = crack_secret(
            attack, victim, core, alphabet=list(range(10))
        )
        matches = sum(a == b for a, b in zip(recovered, secret))
        assert matches >= 2
