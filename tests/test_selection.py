"""The §5.1 selection-logic experiment (Figure 2)."""

import pytest

from repro.bpu import haswell, skylake
from repro.core.selection import selector_learning_experiment
from repro.cpu import PhysicalCore


def run(preset, runs=25, **kwargs):
    return selector_learning_experiment(
        lambda: PhysicalCore(preset(), seed=3), runs=runs, **kwargs
    )


class TestSelectorLearning:
    def test_first_iteration_mispredicts_half(self):
        """Iteration 1: ~5 of 10 branches mispredicted."""
        result = run(skylake)
        assert 3.5 <= result.mispredictions[0] <= 6.5

    def test_curve_decreases_to_zero(self):
        result = run(skylake)
        assert result.mispredictions[-1] < 0.2
        assert result.mispredictions[0] > result.mispredictions[5]

    def test_convergence_in_paper_band(self):
        """The 2-level predictor takes over within ~5-7 repetitions."""
        for preset in (skylake, haswell):
            converged = run(preset).converged_by()
            assert converged is not None
            assert 2 <= converged <= 8

    def test_skylake_not_slower_than_haswell(self):
        """Figure 2: 'the Skylake processor learning the pattern slightly
        faster'."""
        sky = run(skylake, runs=40)
        has = run(haswell, runs=40)
        assert sum(sky.mispredictions) <= sum(has.mispredictions) + 1.0

    def test_result_metadata(self):
        result = run(skylake, runs=2, iterations=5)
        assert result.iterations == 5
        assert "skylake" in result.config_name

    def test_converged_by_none_when_never(self):
        result = run(skylake, runs=1, iterations=1)
        # One iteration of a fresh pattern can't be converged.
        assert result.converged_by(threshold=0.1) is None
