"""Tests for ``repro.service`` — sharded campaigns, scheduler, spool, HTTP.

The load-bearing property is **shard invariance**: a campaign split into
any number of shards digests bit-identically to the unsharded run (RNG
stream positions included), which is what makes the content-addressed
shard cache and the fair-share scheduler pure optimisations.  The
SIGKILL test drives the real CLI in a subprocess and checks a killed,
restarted service converges to the uninterrupted reference digest.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from fractions import Fraction
from pathlib import Path

import pytest

from repro.obs.http import CONTENT_TYPE, MetricsServer
from repro.obs.metrics import MetricsRegistry
from repro.parallel import TrialPool
from repro.resilience.checkpoint import CheckpointMismatch
from repro.service import (
    CampaignAggregate,
    CampaignService,
    CampaignSpec,
    HistogramSketch,
    MomentAccumulator,
    load_jobs,
    plan_shards,
    run_campaign,
    run_trial,
    serve,
    submit_job,
)
from repro.store import ContentStore

#: Small-but-nondegenerate campaign used throughout (7 trials so the
#: 7-shard split exercises one-trial shards).
SMALL = dict(
    scale=32, n_blocks=7, block_branches=300, repetitions=6, shards=1
)


def small_spec(**overrides) -> CampaignSpec:
    params = dict(SMALL)
    params.update(overrides)
    return CampaignSpec(**params)


class TestAccumulators:
    def test_moment_accumulator_is_exact(self):
        acc = MomentAccumulator()
        for v in (0.1, 0.2, 0.7):
            acc.add(v)
        # Sums are exact rationals of the float inputs, not float sums.
        expected = sum(Fraction(v) for v in (0.1, 0.2, 0.7))
        assert acc.total == expected
        assert acc.mean() == float(expected / 3)

    def test_moment_merge_equals_serial_fold(self):
        values = [i / 7 for i in range(20)]
        serial = MomentAccumulator()
        for v in values:
            serial.add(v)
        left, right = MomentAccumulator(), MomentAccumulator()
        for v in values[:11]:
            left.add(v)
        for v in values[11:]:
            right.add(v)
        left.merge(right)
        assert left.state_token() == serial.state_token()
        assert left.variance() == serial.variance()

    def test_moment_state_round_trip(self):
        acc = MomentAccumulator()
        acc.add(0.3)
        again = MomentAccumulator.from_state(acc.to_state())
        assert again.state_token() == acc.state_token()

    def test_histogram_merge_and_edge_mismatch(self):
        a, b = HistogramSketch(), HistogramSketch()
        a.add(0.84)  # last bucket <= 0.85: stability threshold resolves
        b.add(0.86)
        a.merge(b)
        assert sum(a.counts) == 2
        with pytest.raises(ValueError, match="different edges"):
            a.merge(HistogramSketch(edges=(0.5, 1.0)))

    def test_aggregate_state_round_trip_preserves_digest(self):
        spec = small_spec()
        agg = CampaignAggregate()
        for i in range(3):
            agg.add_trial(run_trial(spec, i))
        again = CampaignAggregate.from_state(agg.to_state())
        assert again.digest() == agg.digest()
        assert again.summary() == agg.summary()


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown preset"):
            CampaignSpec(preset="pentium")
        with pytest.raises(ValueError, match="unknown noise"):
            CampaignSpec(noise="cosmic")
        with pytest.raises(ValueError, match="shards"):
            CampaignSpec(shards=0)

    def test_scheduling_knobs_do_not_shape_content(self):
        base = small_spec()
        assert (
            base.with_shards(5).content_key() == base.content_key()
        )
        other_tenant = small_spec(tenant="acme")
        assert other_tenant.content_key() == base.content_key()
        # But the science does.
        assert small_spec(seed=8).content_key() != base.content_key()

    def test_json_round_trip(self):
        spec = small_spec(name="round trip!", tenant="acme")
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert "-" in spec.campaign_id()
        assert " " not in spec.campaign_id()

    def test_plan_shards(self):
        spec = small_spec(n_blocks=7)
        assert plan_shards(spec, 1) == [(0, 7)]
        shards = plan_shards(spec, 3)
        assert shards == [(0, 3), (3, 5), (5, 7)]
        # Clamp: never more shards than trials.
        assert len(plan_shards(spec, 100)) == 7
        with pytest.raises(ValueError):
            plan_shards(spec, 0)


class TestShardInvariance:
    @pytest.mark.parametrize("preset", ["skylake", "haswell"])
    def test_digest_is_shard_count_invariant(self, preset):
        spec = small_spec(preset=preset)
        reference = run_campaign(spec, n_shards=1)
        for n_shards in (2, 4, 7):
            split = run_campaign(spec, n_shards=n_shards)
            assert split.digest() == reference.digest(), (
                f"{preset} campaign digest changed at {n_shards} shards"
            )
        assert reference.n_trials == spec.n_blocks

    def test_trial_records_embed_rng_positions(self):
        spec = small_spec()
        record = run_trial(spec, 3)
        assert len(record["rng_digest"]) == 64
        # Pure function of (spec, index): bit-for-bit reproducible.
        assert run_trial(spec, 3) == record

    def test_forked_map_reduce_matches_serial(self):
        spec = small_spec()
        serial = run_campaign(spec, n_shards=1)
        pool = TrialPool(2, chunk_size=2)
        forked = run_campaign(spec, n_shards=1, pool=pool)
        assert forked.digest() == serial.digest()


class TestCampaignStore:
    def test_warm_run_is_served_without_trials(self, tmp_path):
        spec = small_spec()
        store = ContentStore(tmp_path / "store")
        ran = []
        cold = run_campaign(
            spec, n_shards=3, store=store, pre_trial=ran.append
        )
        assert len(ran) == spec.n_blocks
        ran.clear()
        warm = run_campaign(
            spec, n_shards=3, store=store, pre_trial=ran.append
        )
        assert ran == []  # every shard came from the store
        assert warm.digest() == cold.digest()
        stats = store.stats_dict()
        assert stats["memory_hits"] == 3
        assert stats["puts"] == 3

    def test_shard_cache_shared_across_tenants(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        run_campaign(small_spec(tenant="alpha"), n_shards=2, store=store)
        ran = []
        run_campaign(
            small_spec(tenant="beta", name="other"),
            n_shards=2,
            store=store,
            pre_trial=ran.append,
        )
        assert ran == []  # same science, different tenant: shared entries


class TestCampaignService:
    def test_two_tenants_fair_share(self):
        service = CampaignService(workers=1)
        a = service.submit(small_spec(tenant="alpha", shards=4))
        b = service.submit(
            small_spec(tenant="beta", name="b", seed=11, shards=2)
        )
        # Capacity 1 per wave: the first two waves must serve the two
        # tenants alternately, not drain alpha first.
        service.run_wave()
        service.run_wave()
        assert service._tenant_dispatched == {"alpha": 1, "beta": 1}
        results = service.run_until_complete()
        assert set(results) == {a, b}
        assert results[a]["n_trials"] == 7
        assert results[a]["digest"] != results[b]["digest"]

    def test_result_matches_plain_run(self):
        spec = small_spec(shards=3)
        service = CampaignService(workers=1)
        cid = service.submit(spec)
        result = service.run_until_complete()[cid]
        assert result["digest"] == run_campaign(spec, n_shards=1).digest()
        assert result["shards"] == 3
        assert result["tenant"] == "default"

    def test_submit_is_idempotent(self):
        service = CampaignService(workers=1)
        spec = small_spec()
        assert service.submit(spec) == service.submit(spec)
        assert len(service) == 1

    def test_checkpoint_resume_after_partial_run(self, tmp_path):
        spec = small_spec(shards=4)
        first = CampaignService(workers=1, checkpoint_dir=tmp_path / "ck")
        cid = first.submit(spec)
        first.run_wave()  # one shard done, checkpointed
        done_before = len(first.campaign(cid).done)
        assert done_before == 1

        second = CampaignService(workers=1, checkpoint_dir=tmp_path / "ck")
        assert second.submit(spec) == cid
        state = second.campaign(cid)
        assert state.resumed_shards == done_before
        result = second.run_until_complete()[cid]
        assert result["resumed_shards"] == done_before
        assert result["digest"] == run_campaign(spec, n_shards=1).digest()

    def test_resume_rejects_changed_shard_layout(self, tmp_path):
        spec = small_spec(shards=2)
        first = CampaignService(workers=1, checkpoint_dir=tmp_path / "ck")
        first.submit(spec)
        first.run_wave()
        second = CampaignService(workers=1, checkpoint_dir=tmp_path / "ck")
        with pytest.raises(CheckpointMismatch):
            second.submit(spec.with_shards(3))
        # resume=False clears the stale checkpoint and starts over.
        third = CampaignService(workers=1, checkpoint_dir=tmp_path / "ck")
        cid = third.submit(spec.with_shards(3), resume=False)
        assert third.campaign(cid).resumed_shards == 0

    def test_fully_cached_campaign_completes_at_submit(self, tmp_path):
        spec = small_spec(shards=2)
        store = ContentStore(tmp_path / "store")
        cold = CampaignService(workers=1, store=store)
        cid = cold.submit(spec)
        reference = cold.run_until_complete()[cid]

        served = CampaignService(workers=1, store=store)
        assert served.submit(spec) == cid
        state = served.campaign(cid)
        assert state.complete
        assert state.cached_shards == 2
        assert served.results()[cid]["digest"] == reference["digest"]


class TestMetricsServer:
    def test_serves_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_test_total", "test counter", labels=("kind",)
        ).inc(kind="unit")
        with MetricsServer(port=0, registry=registry) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode("utf-8")
                assert response.headers["Content-Type"] == CONTENT_TYPE
        assert "repro_test_total" in body
        assert 'kind="unit"' in body

    def test_other_paths_404(self):
        with MetricsServer(port=0, registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/other", timeout=5
                )
            assert err.value.code == 404


class TestSpool:
    def test_submit_load_round_trip(self, tmp_path):
        spec = small_spec(name="queued")
        path = submit_job(tmp_path, spec)
        assert path.exists()
        assert load_jobs(tmp_path) == [spec]
        # Malformed spool entries are skipped, not fatal.
        (tmp_path / "jobs" / "broken.json").write_text("{nope")
        assert load_jobs(tmp_path) == [spec]

    def test_serve_once_drains_and_writes_results(self, tmp_path):
        root = tmp_path / "svc"
        spec_a = small_spec(name="a", tenant="alpha", shards=2)
        spec_b = small_spec(name="b", tenant="beta", seed=11, shards=2)
        submit_job(root, spec_a)
        submit_job(root, spec_b)
        logs = []
        assert serve(root, workers=1, once=True, log=logs.append) == 0
        results = sorted((root / "results").glob("*.json"))
        assert len(results) == 2
        by_name = {
            json.loads(p.read_text())["name"]: json.loads(p.read_text())
            for p in results
        }
        assert by_name["a"]["digest"] == run_campaign(
            spec_a, n_shards=1
        ).digest()
        stats = json.loads((root / "store-stats.json").read_text())
        assert stats["puts"] >= 4  # two campaigns x two shards
        assert load_jobs(root) == []  # completed jobs are not reloaded

        # Warm restart over the same root: all shards come from the store.
        for path in results:
            path.unlink()
        (root / "checkpoints").mkdir(exist_ok=True)
        for ck in (root / "checkpoints").glob("*"):
            ck.unlink()
        assert serve(root, workers=1, once=True, log=logs.append) == 0
        rerun = json.loads(
            (root / "results" / results[0].name).read_text()
        )
        assert rerun["cached_shards"] == rerun["shards"]
        assert rerun["digest"] == by_name[rerun["name"]]["digest"]


@pytest.mark.slow
class TestServiceKillResume:
    def _serve_cmd(self, root: Path, delay: float) -> list:
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--root", str(root), "--once", "--workers", "2",
        ]
        if delay:
            cmd += ["--trial-delay", str(delay)]
        return cmd

    def test_sigkilled_service_resumes_to_reference_digest(self, tmp_path):
        spec = small_spec(name="kill", shards=3, n_blocks=6)
        reference = run_campaign(spec, n_shards=1).digest()

        root = tmp_path / "svc"
        submit_job(root, spec)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        proc = subprocess.Popen(
            self._serve_cmd(root, delay=0.4),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill as soon as the first wave has checkpointed: the
            # surviving state is a partial campaign mid-flight.
            ckpt = root / "checkpoints" / f"{spec.campaign_id()}.ckpt"
            deadline = time.time() + 60
            while not ckpt.exists() and time.time() < deadline:
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert ckpt.exists(), "service never wrote a checkpoint"
            assert proc.poll() is None, "service finished before the kill"
            proc.send_signal(signal.SIGKILL)
            assert proc.wait(timeout=30) == -signal.SIGKILL
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=30)
        assert not (root / "results" / f"{spec.campaign_id()}.json").exists()

        # Restart (no delay): must resume and converge, not recompute
        # into a different answer.
        done = subprocess.run(
            self._serve_cmd(root, delay=0.0),
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert done.returncode == 0, done.stderr
        result = json.loads(
            (root / "results" / f"{spec.campaign_id()}.json").read_text()
        )
        assert result["digest"] == reference
        assert result["resumed_shards"] + result["cached_shards"] >= 1
