"""Examples: every script must at least import cleanly, and the fast
ones must run end-to-end.

Import rot in example code is the most common way reproduction repos
decay; compiling each script catches renamed APIs immediately, while
keeping the test suite fast (full example runs take minutes and are
exercised manually / by the benches).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_module(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleHygiene:
    def test_expected_examples_present(self):
        expected = {
            "quickstart.py",
            "covert_channel.py",
            "montgomery_spy.py",
            "jpeg_spy.py",
            "sgx_attack.py",
            "pht_reverse_engineering.py",
            "aslr_bypass.py",
            "mitigated_victim.py",
            "pin_crack.py",
            "hyperthread_covert.py",
            "branch_poisoning.py",
            "btb_vs_branchscope.py",
            "scheduled_attack.py",
            "multi_branch_spy.py",
        }
        assert expected.issubset(set(ALL_EXAMPLES))

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_cleanly(self, name):
        module = load_module(name)
        assert hasattr(module, "main"), f"{name} must define main()"

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_has_module_docstring(self, name):
        module = load_module(name)
        assert module.__doc__ and "Run:" in module.__doc__


class TestFastExamplesRun:
    def test_branch_poisoning_main(self, capsys):
        load_module("branch_poisoning.py").main()
        out = capsys.readouterr().out
        assert "poisoned" in out

    def test_quickstart_main(self, capsys):
        load_module("quickstart.py").main()
        out = capsys.readouterr().out
        assert "bits correct" in out
