"""High-level BranchScope facade against real victims."""

import numpy as np
import pytest

from repro.bpu import haswell, skylake
from repro.bpu.fsm import State
from repro.core.attack import BranchScope
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting
from repro.victims import SecretBitArrayVictim

SMALL_BLOCK = 8000


def make_attack(preset=haswell, setting=NoiseSetting.SILENT, seed=42, bits=None):
    core = PhysicalCore(preset().scaled(16), seed=seed)
    secret = bits if bits is not None else (
        np.random.default_rng(3).integers(0, 2, 80).tolist()
    )
    victim = SecretBitArrayVictim(secret)
    spy = Process("spy")
    attack = BranchScope(
        core,
        spy,
        victim.branch_address,
        setting=setting,
        block_branches=SMALL_BLOCK,
    )
    return core, victim, attack


class TestSpyOnBranch:
    def test_recovers_single_direction(self):
        core, victim, attack = make_attack(bits=[1])
        spied = attack.spy_on_branch(lambda: victim.execute_next(core))
        assert spied.taken is True
        assert spied.pattern in ("MM", "MH", "HM", "HH")

    def test_recovers_full_secret_silently(self):
        core, victim, attack = make_attack()
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), len(victim)
        )
        truth = [bool(b) for b in victim.reveal_secret()]
        assert recovered == truth

    def test_recovers_secret_on_skylake(self):
        core, victim, attack = make_attack(preset=skylake)
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), len(victim)
        )
        assert recovered == [bool(b) for b in victim.reveal_secret()]

    def test_low_error_with_isolated_noise(self):
        core, victim, attack = make_attack(setting=NoiseSetting.ISOLATED)
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), len(victim)
        )
        truth = [bool(b) for b in victim.reveal_secret()]
        wrong = sum(a != b for a, b in zip(recovered, truth))
        assert wrong / len(truth) < 0.15

    def test_negative_bit_count_rejected(self):
        _, _, attack = make_attack()
        with pytest.raises(ValueError):
            attack.spy_on_bits(lambda: None, -1)


class TestCalibration:
    def test_lazy_calibration(self):
        core, victim, attack = make_attack()
        assert attack._compiled is None
        _ = attack.compiled_block
        assert attack._compiled is not None

    def test_calibrated_block_pins_working_state(self):
        core, victim, attack = make_attack()
        compiled = attack.calibrate()
        row = compiled.target_entry_map(core, attack.address)
        fsm = core.predictor.bimodal.pht.fsm
        assert (row == row[0]).all()
        assert fsm.public_state(int(row[0])) is State.SN

    def test_custom_prime_state(self):
        core = PhysicalCore(haswell().scaled(16), seed=1)
        victim = SecretBitArrayVictim([1, 0, 1, 1, 0, 0, 1, 0])
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            prime_state=State.ST,
            probe_outcomes=(False, False),
            block_branches=SMALL_BLOCK,
        )
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), len(victim)
        )
        assert recovered == [bool(b) for b in victim.reveal_secret()]
