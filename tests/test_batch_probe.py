"""Differential tests for the batch-probe scan engine and delta snapshots.

Two invariants are pinned here:

* the vectorised batch scan (:mod:`repro.core.batch_probe`) returns
  exactly the state vector of the scalar probe/restore loop, on every
  preset and under every fast-path-safe mitigation;
* delta (journal-replay) restores leave state identical to the seed's
  full-copy restores, including around external bulk writes, stale
  marks, journal overflow and cross-core snapshots.
"""

import numpy as np
import pytest

from repro.bpu.presets import haswell, sandy_bridge, skylake
from repro.core.batch_probe import batch_scan_supported
from repro.core.pht_map import scan_states, scan_states_reference
from repro.core.randomizer import RandomizationBlock
from repro.cpu.core import PhysicalCore
from repro.cpu.counters import CounterKind
from repro.cpu.process import Process
from repro.mitigations import (
    BpuPartitioning,
    NoisyPerformanceCounters,
    NoisyTimer,
    PhtIndexRandomization,
    StaticPredictionForSensitiveBranches,
    StochasticFSM,
)
from repro.system.noise import inject_noise

PRESETS = {
    "skylake": skylake,
    "haswell": haswell,
    "sandy_bridge": sandy_bridge,
}

SCAN_BASE = 0x4000
SCAN_LEN = 300


def make_core(preset_name, seed=7):
    return PhysicalCore(PRESETS[preset_name]().scaled(256), seed=seed)


def install(core, spy, mitigation_name):
    """Install one named fast-path-safe mitigation configuration."""
    n_entries = core.predictor.bimodal.pht.n_entries
    if mitigation_name == "none":
        return
    if mitigation_name == "partitioning":
        core.install_mitigation(
            BpuPartitioning.by_process(n_entries, n_partitions=4)
        )
    elif mitigation_name == "pht_randomization":
        # rekey_period small enough to rekey mid-scan, exercising the
        # hook pre-pass's call-order fidelity.
        core.install_mitigation(
            PhtIndexRandomization(np.random.default_rng(3), rekey_period=50)
        )
    elif mitigation_name == "static_prediction":
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        for address in range(SCAN_BASE, SCAN_BASE + SCAN_LEN, 7):
            spy.protect_branch(address)
    elif mitigation_name == "noisy_timer":
        core.install_mitigation(NoisyTimer(sigma=25.0))
    elif mitigation_name == "stacked":
        core.install_mitigation(
            BpuPartitioning.by_process(n_entries, n_partitions=4)
        )
        core.install_mitigation(
            PhtIndexRandomization(np.random.default_rng(9), rekey_period=80)
        )
    else:  # pragma: no cover - guard against typos in parametrize lists
        raise ValueError(mitigation_name)


def scan_pair(preset_name, mitigation_name, exercise_outcome):
    """Run reference and batch scans on twin seeded cores."""
    results = []
    for method in ("reference", "batch"):
        core = make_core(preset_name)
        spy = Process("spy")
        install(core, spy, mitigation_name)
        block = RandomizationBlock.generate(5, n_branches=3000)
        compiled = block.compile(core, spy)
        addresses = list(range(SCAN_BASE, SCAN_BASE + SCAN_LEN, 3))
        if method == "reference":
            states = scan_states_reference(
                core,
                spy,
                addresses,
                compiled,
                exercise_outcome=exercise_outcome,
            )
        else:
            states = scan_states(
                core,
                spy,
                addresses,
                compiled,
                exercise_outcome=exercise_outcome,
                method="batch",
            )
        results.append((states, core))
    return results


def assert_cores_equal(a: PhysicalCore, b: PhysicalCore) -> None:
    """Every piece of checkpointable microarchitectural state matches."""
    pa, pb = a.predictor, b.predictor
    np.testing.assert_array_equal(pa.bimodal.pht.levels, pb.bimodal.pht.levels)
    np.testing.assert_array_equal(pa.gshare.pht.levels, pb.gshare.pht.levels)
    np.testing.assert_array_equal(pa.selector.counters, pb.selector.counters)
    assert pa.ghr.value == pb.ghr.value
    np.testing.assert_array_equal(pa.bit.tags, pb.bit.tags)
    np.testing.assert_array_equal(pa.bit.valid, pb.bit.valid)
    np.testing.assert_array_equal(pa.btb.tags, pb.btb.tags)
    np.testing.assert_array_equal(pa.btb.targets, pb.btb.targets)
    np.testing.assert_array_equal(pa.btb.valid, pb.btb.valid)
    np.testing.assert_array_equal(a.icache.tags, b.icache.tags)
    np.testing.assert_array_equal(a.icache.valid, b.icache.valid)
    assert a.clock.now == b.clock.now
    assert set(a._counters) == set(b._counters)
    for pid, counters in a._counters.items():
        assert counters.sample() == b._counters[pid].sample()


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    @pytest.mark.parametrize(
        "mitigation_name",
        [
            "none",
            "partitioning",
            "pht_randomization",
            "static_prediction",
            "noisy_timer",
            "stacked",
        ],
    )
    @pytest.mark.parametrize("exercise_outcome", [None, True, False])
    def test_identical_state_vectors(
        self, preset_name, mitigation_name, exercise_outcome
    ):
        (ref_states, _), (batch_states, _) = scan_pair(
            preset_name, mitigation_name, exercise_outcome
        )
        assert ref_states == batch_states

    def test_auto_dispatches_to_batch_result(self):
        core = make_core("skylake")
        spy = Process("spy")
        block = RandomizationBlock.generate(5, n_branches=3000)
        compiled = block.compile(core, spy)
        addresses = list(range(SCAN_BASE, SCAN_BASE + 128))
        auto = scan_states(core, spy, addresses, compiled)
        batch = scan_states(core, spy, addresses, compiled, method="batch")
        assert auto == batch

    def test_batch_scan_restores_core(self):
        core = make_core("haswell")
        spy = Process("spy")
        block = RandomizationBlock.generate(5, n_branches=3000)
        compiled = block.compile(core, spy)
        pristine = make_core("haswell")
        scan_states(
            core,
            spy,
            list(range(SCAN_BASE, SCAN_BASE + 128)),
            compiled,
            method="batch",
        )
        assert_cores_equal(core, pristine)

    def test_unknown_method_rejected(self):
        core = make_core("haswell")
        spy = Process("spy")
        compiled = RandomizationBlock.generate(5, n_branches=500).compile(
            core, spy
        )
        with pytest.raises(ValueError):
            scan_states(core, spy, [SCAN_BASE], compiled, method="fast")


class TestFallback:
    @pytest.mark.parametrize(
        "mitigation", [NoisyPerformanceCounters(1), StochasticFSM(0.25)]
    )
    def test_observation_mitigations_disable_batch(self, mitigation):
        core = make_core("skylake")
        core.install_mitigation(mitigation)
        assert not batch_scan_supported(core)

    def test_safe_mitigations_keep_batch(self):
        core = make_core("skylake")
        spy = Process("spy")
        install(core, spy, "stacked")
        core.install_mitigation(NoisyTimer(sigma=10.0))
        assert batch_scan_supported(core)

    def test_forcing_batch_under_noisy_counters_raises(self):
        core = make_core("haswell")
        spy = Process("spy")
        core.install_mitigation(NoisyPerformanceCounters(1))
        compiled = RandomizationBlock.generate(5, n_branches=500).compile(
            core, spy
        )
        with pytest.raises(ValueError):
            scan_states(core, spy, [SCAN_BASE], compiled, method="batch")

    def test_auto_falls_back_to_exact_scalar(self):
        """Under a stochastic mitigation, auto equals the scalar reference
        exactly (same core RNG stream, same draws)."""
        states = []
        for _ in range(2):
            core = make_core("haswell")
            core.install_mitigation(StochasticFSM(0.5))
            spy = Process("spy")
            compiled = RandomizationBlock.generate(5, n_branches=1000).compile(
                core, spy
            )
            addresses = list(range(SCAN_BASE, SCAN_BASE + 64))
            states.append(scan_states(core, spy, addresses, compiled))
        reference_core = make_core("haswell")
        reference_core.install_mitigation(StochasticFSM(0.5))
        spy = Process("spy")
        compiled = RandomizationBlock.generate(5, n_branches=1000).compile(
            reference_core, spy
        )
        reference = scan_states_reference(
            reference_core, spy, list(range(SCAN_BASE, SCAN_BASE + 64)), compiled
        )
        assert states[0] == states[1] == reference


def twin_cores(preset_name="haswell", seed=11):
    return make_core(preset_name, seed), make_core(preset_name, seed)


def twin_spies():
    """Same-pid spy processes, so twin cores' counter files compare equal."""
    return Process("spy", pid=90001), Process("spy", pid=90001)


def churn(core, spy, rng_seed=23, n=200):
    """Deterministically touch every component a delta restore must undo."""
    rng = np.random.default_rng(rng_seed)
    addresses = rng.integers(0x9000, 0x9000 + 4096, size=n)
    outcomes = rng.integers(0, 2, size=n).astype(bool)
    for address, taken in zip(addresses, outcomes):
        core.execute_branch(spy, int(address), bool(taken))


class TestDeltaRestoreEqualsFullCopy:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    def test_scalar_churn(self, preset_name):
        delta_core, full_core = twin_cores(preset_name)
        spy_a, spy_b = twin_spies()
        churn(delta_core, spy_a, rng_seed=1)
        churn(full_core, spy_b, rng_seed=1)
        snap_delta = delta_core.checkpoint()
        snap_full = full_core.checkpoint(full=True)
        churn(delta_core, spy_a, rng_seed=2)
        churn(full_core, spy_b, rng_seed=2)
        delta_core.restore(snap_delta)
        full_core.restore(snap_full)
        assert_cores_equal(delta_core, full_core)

    def test_compiled_block_apply_between(self):
        """CompiledBlock.apply is an external bulk write; delta restore
        across it must still be exact (record_touch / invalidation)."""
        delta_core, full_core = twin_cores()
        spy_a, spy_b = twin_spies()
        block = RandomizationBlock.generate(5, n_branches=3000)
        snap_delta = delta_core.checkpoint()
        snap_full = full_core.checkpoint(full=True)
        block.compile(delta_core, spy_a).apply(delta_core, spy_a)
        block.compile(full_core, spy_b).apply(full_core, spy_b)
        churn(delta_core, spy_a, rng_seed=3, n=50)
        churn(full_core, spy_b, rng_seed=3, n=50)
        delta_core.restore(snap_delta)
        full_core.restore(snap_full)
        assert_cores_equal(delta_core, full_core)

    def test_inject_noise_between(self):
        delta_core, full_core = twin_cores()
        spy_a, spy_b = twin_spies()
        churn(delta_core, spy_a, rng_seed=4, n=40)
        churn(full_core, spy_b, rng_seed=4, n=40)
        snap_delta = delta_core.checkpoint()
        snap_full = full_core.checkpoint(full=True)
        inject_noise(delta_core, 500, np.random.default_rng(5))
        inject_noise(full_core, 500, np.random.default_rng(5))
        delta_core.restore(snap_delta)
        full_core.restore(snap_full)
        assert_cores_equal(delta_core, full_core)

    def test_mark_reusable_across_repeated_restores(self):
        delta_core, full_core = twin_cores()
        spy_a, spy_b = twin_spies()
        snap_delta = delta_core.checkpoint()
        snap_full = full_core.checkpoint(full=True)
        for round_seed in (6, 7, 8):
            churn(delta_core, spy_a, rng_seed=round_seed, n=60)
            churn(full_core, spy_b, rng_seed=round_seed, n=60)
            delta_core.restore(snap_delta)
            full_core.restore(snap_full)
            assert_cores_equal(delta_core, full_core)

    def test_newer_mark_goes_stale_after_older_restore(self):
        """Restoring an older snapshot truncates the journal; a newer
        snapshot's mark must then fall back to its full copy."""
        delta_core, full_core = twin_cores()
        spy_a, spy_b = twin_spies()
        old_delta = delta_core.checkpoint()
        old_full = full_core.checkpoint(full=True)
        churn(delta_core, spy_a, rng_seed=9, n=60)
        churn(full_core, spy_b, rng_seed=9, n=60)
        new_delta = delta_core.checkpoint()
        new_full = full_core.checkpoint(full=True)
        delta_core.restore(old_delta)
        full_core.restore(old_full)
        delta_core.restore(new_delta)
        full_core.restore(new_full)
        assert_cores_equal(delta_core, full_core)

    def test_journal_overflow_falls_back(self):
        """More journaled writes than the cap invalidates the journal;
        restore must transparently use the snapshot's full copy."""
        delta_core, full_core = twin_cores()
        spy_a, spy_b = twin_spies()
        snap_delta = delta_core.checkpoint()
        snap_full = full_core.checkpoint(full=True)
        # Far more than the per-component journal cap (>= 256 elements).
        churn(delta_core, spy_a, rng_seed=10, n=1500)
        churn(full_core, spy_b, rng_seed=10, n=1500)
        delta_core.restore(snap_delta)
        full_core.restore(snap_full)
        assert_cores_equal(delta_core, full_core)

    def test_cross_core_restore_falls_back(self):
        """A snapshot restored into a different core of the same geometry
        cannot replay the foreign journal — it must full-copy."""
        source, target = twin_cores()
        spy = Process("spy", pid=90001)
        churn(source, spy, rng_seed=12, n=80)
        snapshot = source.checkpoint()
        churn(target, Process("spy", pid=90001), rng_seed=13, n=80)
        target.restore(snapshot)
        assert_cores_equal(source, target)

    def test_counter_version_fast_path(self):
        counters_file = PhysicalCore(haswell().scaled(64), seed=0)
        spy = Process("spy")
        counters_file.execute_branch(spy, 0x100, True)
        counters = counters_file.counters_for(spy)
        snapshot = counters.snapshot()
        # Unmoved file: restore is a no-op and contents stay correct.
        counters.restore(snapshot)
        assert counters.read(CounterKind.BRANCHES) == 1
        counters.increment(CounterKind.BRANCHES)
        counters.restore(snapshot)
        assert counters.read(CounterKind.BRANCHES) == 1
        # A restored file adopts the snapshot's version: restoring the
        # same snapshot again is again free and still correct.
        counters.restore(snapshot)
        assert counters.read(CounterKind.BRANCHES) == 1
