"""Coverage for remaining paths: BTB timing in the core, workload noise,
partitions, gshare update ordering, covert config validation."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.gshare import GSharePredictor
from repro.bpu.partition import Partition
from repro.bpu.pht import PatternHistoryTable
from repro.bpu.fsm import State, textbook_2bit_fsm
from repro.cpu import PhysicalCore, Process
from repro.system.noise import run_workload_noise
from repro.workloads import BiasedWorkload, MixedWorkload


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=151)


class TestBtbTimingInCore:
    def test_first_taken_execution_is_btb_miss(self, core):
        process = Process("p")
        record = core.execute_branch(process, 0x1000, True)
        assert record.btb_miss

    def test_repeat_taken_execution_hits_btb(self, core):
        process = Process("p")
        core.execute_branch(process, 0x1000, True)
        record = core.execute_branch(process, 0x1000, True)
        assert not record.btb_miss

    def test_not_taken_never_btb_miss(self, core):
        process = Process("p")
        record = core.execute_branch(process, 0x1000, False)
        assert not record.btb_miss

    def test_btb_conflict_restores_miss(self, core):
        process = Process("p")
        n_sets = core.predictor.btb.n_sets
        core.execute_branch(process, 0x1000, True)
        core.execute_branch(process, 0x1000 + n_sets, True)  # evicts
        record = core.execute_branch(process, 0x1000, True)
        assert record.btb_miss

    def test_explicit_target_respected(self, core):
        process = Process("p")
        core.execute_branch(process, 0x2000, True, target=0x9999)
        assert core.predictor.btb.lookup(0x2000).target == 0x9999
        # Same target again: a hit.
        record = core.execute_branch(process, 0x2000, True, target=0x9999)
        assert not record.btb_miss
        # Different target (indirect-ish): charged as a miss.
        record = core.execute_branch(process, 0x2000, True, target=0x7777)
        assert record.btb_miss


class TestWorkloadNoise:
    def test_perturbs_predictor_state(self, core):
        before = core.predictor.bimodal.pht.snapshot()
        run_workload_noise(core, MixedWorkload.typical(seed=9), 800)
        assert (core.predictor.bimodal.pht.snapshot() != before).any()

    def test_structured_noise_parks_entries_in_strong_states(self, core):
        """Biased co-runners saturate the entries they own — unlike
        uniform noise, which leaves a mix of weak states."""
        workload = BiasedWorkload(0x61_0000, seed=2, bias=0.98)
        run_workload_noise(core, workload, 2000)
        pht = core.predictor.bimodal.pht
        touched = {
            pht.state((0x61_0000 + 4 * i) % pht.n_entries)
            for i in range(16)
        }
        strong = {s for s in touched if s.is_strong}
        assert len(strong) >= len(touched) // 2


class TestGshareUpdateOrdering:
    def test_update_trains_entry_that_predicted(self):
        """GHR must not shift before the gshare PHT trains."""
        fsm = textbook_2bit_fsm()
        ghr = GlobalHistoryRegister(8)
        gshare = GSharePredictor(PatternHistoryTable(64, fsm), ghr)
        ghr.set(0b1010)
        index_at_prediction = gshare.index(0x123)
        gshare.update(0x123, True)
        # The trained entry is the one indexed under the old history.
        assert gshare.pht.level(index_at_prediction) != fsm.level_for(
            State.WN
        )


class TestPartition:
    def test_confine(self):
        partition = Partition(offset=10, size=5)
        assert partition.confine(0) == 10
        assert partition.confine(7) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(offset=0, size=0)


class TestCovertConfigValidation:
    def test_unknown_measurement_pattern_is_counters_path(self, core):
        """Any measurement string other than 'timing' uses counters."""
        from repro.core.covert import CovertChannel, CovertConfig
        from repro.system.scheduler import NoiseSetting

        channel = CovertChannel.for_processes(
            core,
            Process("victim"),
            Process("spy"),
            setting=NoiseSetting.SILENT,
            config=CovertConfig(block_branches=6000),
        )
        assert channel.transmit([1, 0, 1]) == [1, 0, 1]
