"""Prime/probe primitives through the full core model."""

import pytest

from repro.bpu import haswell, skylake
from repro.bpu.fsm import State
from repro.core.patterns import DecodedState
from repro.core.prime_probe import (
    prime_direct,
    prime_sequence_for,
    probe_pair,
    probe_timed,
    read_entry_state,
)
from repro.cpu import PhysicalCore, Process


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=13)


@pytest.fixture
def spy():
    return Process("spy")


ADDRESS = 0x30_0006D


class TestPrimeSequences:
    @pytest.mark.parametrize("preset", [haswell, skylake])
    @pytest.mark.parametrize("state", list(State))
    def test_sequence_reaches_state_from_any_level(self, preset, state):
        fsm = preset().fsm
        outcomes = prime_sequence_for(fsm, state)
        for start in range(fsm.n_levels):
            level = start
            for taken in outcomes:
                level = fsm.step(level, taken)
            assert fsm.public_state(level) is state, (start, state)

    def test_prime_direct_sets_entry(self, core, spy):
        for state in (State.ST, State.SN, State.WN, State.WT):
            prime_direct(core, spy, ADDRESS, state)
            assert core.predictor.bimodal_state(ADDRESS) is state


class TestProbePair:
    def test_probe_is_two_branches(self, core, spy):
        with pytest.raises(ValueError):
            probe_pair(core, spy, ADDRESS, (True,))

    @pytest.mark.parametrize(
        "state,probe,expected",
        [
            (State.ST, (True, True), "HH"),
            (State.ST, (False, False), "MM"),
            (State.SN, (True, True), "MM"),
            (State.SN, (False, False), "HH"),
            (State.WN, (True, True), "MH"),
            (State.WN, (False, False), "HH"),
        ],
    )
    def test_patterns_match_table1(self, core, spy, state, probe, expected):
        """probe_pair through counters reproduces the analytical rows."""
        prime_direct(core, spy, ADDRESS, state)
        # Force 1-level mode for the probe, as the attack does.
        core.predictor.bit.evict(ADDRESS)
        result = probe_pair(core, spy, ADDRESS, probe)
        assert result.pattern == expected

    def test_probe_timed_returns_two_latencies(self, core, spy):
        lat1, lat2 = probe_timed(core, spy, ADDRESS, (True, True))
        assert lat1 >= 1 and lat2 >= 1

    def test_probe_timed_validates_length(self, core, spy):
        with pytest.raises(ValueError):
            probe_timed(core, spy, ADDRESS, (True, True, True))


class TestReadEntryState:
    @pytest.mark.parametrize("state", [State.ST, State.SN, State.WN, State.WT])
    def test_reads_back_primed_state(self, core, spy, state):
        def prepare():
            prime_direct(core, spy, ADDRESS, state)
            core.predictor.bit.evict(ADDRESS)

        decoded = read_entry_state(core, spy, ADDRESS, prepare)
        assert decoded.value == state.name

    def test_restores_surrounding_state(self, core, spy):
        core.execute_branch(spy, 0x999, True)
        checkpoint = core.checkpoint()

        def prepare():
            prime_direct(core, spy, ADDRESS, State.ST)
            core.predictor.bit.evict(ADDRESS)

        read_entry_state(core, spy, ADDRESS, prepare)
        after = core.checkpoint()
        assert (
            checkpoint["predictor"]["bimodal"] == after["predictor"]["bimodal"]
        ).all()

    def test_skylake_post_st_ambiguity(self, spy):
        """Priming ST then one N decodes as ST on Skylake (the quirk)."""
        core = PhysicalCore(skylake().scaled(16), seed=13)

        def prepare():
            prime_direct(core, spy, ADDRESS, State.ST)
            core.execute_branch(spy, ADDRESS, False)
            core.predictor.bit.evict(ADDRESS)

        assert read_entry_state(core, spy, ADDRESS, prepare) is DecodedState.ST
