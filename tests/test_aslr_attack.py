"""ASLR derandomisation via PHT collisions (paper §9.2)."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.core.aslr_attack import probe_collision, recover_load_base
from repro.cpu import PhysicalCore, Process
from repro.system import AslrConfig, AttackScheduler, NoiseSetting


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=51)


@pytest.fixture
def spy():
    return Process("spy")


BRANCH_OFFSET = 0x1234  # branch's offset inside the victim binary


def make_victim(core, rng, alignment=16, entropy_bits=8):
    config = AslrConfig(entropy_bits=entropy_bits, alignment=alignment)
    victim = config.randomized_process("victim", rng, link_base=0)
    address = victim.branch_address(BRANCH_OFFSET)

    def trigger():
        # The victim's branch alternates, as a loop branch would.
        trigger.count += 1
        core.execute_branch(victim, address, trigger.count % 3 != 0)

    trigger.count = 0
    return config, victim, trigger


class TestProbeCollision:
    def test_high_score_at_true_address(self, core, spy, rng):
        _, victim, trigger = make_victim(core, rng)
        true_address = victim.branch_address(BRANCH_OFFSET)
        scheduler = AttackScheduler(core, NoiseSetting.SILENT)
        score = probe_collision(
            core, spy, true_address, trigger, trials=8, scheduler=scheduler
        )
        assert score >= 0.5

    def test_low_score_at_unrelated_address(self, core, spy, rng):
        _, victim, trigger = make_victim(core, rng)
        wrong = victim.branch_address(BRANCH_OFFSET) + 7  # different entry
        scheduler = AttackScheduler(core, NoiseSetting.SILENT)
        score = probe_collision(
            core, spy, wrong, trigger, trials=8, scheduler=scheduler
        )
        assert score <= 0.25


class TestRecoverLoadBase:
    def test_true_congruence_class_wins(self, core, spy, rng):
        config, victim, trigger = make_victim(core, rng)
        candidates = [
            slot * config.alignment for slot in range(config.slots)
        ]
        scheduler = AttackScheduler(core, NoiseSetting.SILENT)
        scores = recover_load_base(
            core,
            spy,
            BRANCH_OFFSET,
            trigger,
            candidates,
            trials=6,
            scheduler=scheduler,
        )
        pht = core.predictor.bimodal.pht.n_entries
        true_class = victim.branch_address(BRANCH_OFFSET) % pht
        assert scores[0].candidate_address % pht == true_class

    def test_candidates_deduplicated_by_congruence(self, core, spy, rng):
        config, victim, trigger = make_victim(core, rng)
        pht = core.predictor.bimodal.pht.n_entries
        candidates = [0, pht, 2 * pht, 16]  # three alias to one class
        scores = recover_load_base(
            core, spy, BRANCH_OFFSET, trigger, candidates, trials=2,
            scheduler=AttackScheduler(core, NoiseSetting.SILENT),
        )
        assert len(scores) == 2

    def test_entropy_reduction_matches_table_size(self, core):
        """The attack learns log2(PHT size) - log2(alignment) bits."""
        pht = core.predictor.bimodal.pht.n_entries
        config = AslrConfig(entropy_bits=10, alignment=16)
        distinguishable = pht // config.alignment
        assert distinguishable == 2 ** (
            int(np.log2(pht)) - int(np.log2(config.alignment))
        )
