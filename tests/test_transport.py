"""Tests for the multi-host layer: wire framing, leases, coordinator,
worker, and the chaos suite.

The headline invariant under test is the distributed extension of PR
8's shard invariance: the merged campaign digest is **bit-identical**
whether the campaign ran single-host via ``run_campaign``, across N
workers over the HTTP transport, through a deterministic network fault
storm, with leases expiring mid-shard, or with a worker SIGKILLed — the
slow subprocess test at the bottom drives the real CLI through the last
one.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs import trace as obs
from repro.resilience import NetworkFaultInjector, NetworkFaultSpec
from repro.resilience.faults import (
    DELAY,
    DROP,
    DROP_RESPONSE,
    DUPLICATE,
    TRUNCATE,
)
from repro.service import CampaignSpec, run_campaign, run_worker
from repro.service.coordinator import Coordinator, run_coordinator
from repro.service.leases import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    LeaseTable,
    publish_lease_metrics,
)
from repro.service.server import pending_jobs, service_dirs, submit_job
from repro.service.transport import (
    CoordinatorServer,
    CoordinatorUnreachable,
    LeaseQuarantinedError,
    TransportClient,
    WIRE_MAGIC,
    WireError,
    aggregate_state_digest,
    frame_payload,
    unframe_payload,
)

SMALL = dict(
    scale=32, n_blocks=7, block_branches=300, repetitions=6, shards=3
)


def small_spec(**overrides) -> CampaignSpec:
    params = dict(SMALL)
    params.update(overrides)
    return CampaignSpec(**params)


@pytest.fixture(autouse=True)
def _reset_resilience_counters():
    obs.reset_resilience_events()
    yield
    obs.reset_resilience_events()


# -- wire framing -------------------------------------------------------------


class TestWireFraming:
    def test_round_trip(self):
        payload = {"b": [1, 2], "a": {"x": None, "y": "é"}}
        assert unframe_payload(frame_payload(payload)) == payload

    def test_canonical_bytes_are_key_order_independent(self):
        assert frame_payload({"a": 1, "b": 2}) == frame_payload(
            {"b": 2, "a": 1}
        )

    def test_truncated_frame_rejected(self):
        data = frame_payload({"k": "v" * 100})
        for cut in (len(data) - 1, len(data) // 2, len(WIRE_MAGIC) + 10):
            with pytest.raises(WireError):
                unframe_payload(data[:cut])

    def test_flipped_byte_rejected(self):
        data = bytearray(frame_payload({"k": 123}))
        data[-1] ^= 0xFF
        with pytest.raises(WireError):
            unframe_payload(bytes(data))

    def test_foreign_bytes_rejected(self):
        with pytest.raises(WireError):
            unframe_payload(b'{"plain": "json"}')

    def test_aggregate_state_digest_matches_unframed_identity(self):
        state = {"n": 3, "total": "7/2"}
        assert aggregate_state_digest(state) == aggregate_state_digest(
            dict(reversed(list(state.items())))
        )
        assert aggregate_state_digest(state) != aggregate_state_digest(
            {"n": 4, "total": "7/2"}
        )


# -- network fault oracle -----------------------------------------------------


class TestNetworkFaultInjector:
    def test_decisions_are_pure_in_seed_and_key(self):
        spec = NetworkFaultSpec(
            drop_rate=0.2,
            drop_response_rate=0.2,
            delay_rate=0.2,
            duplicate_rate=0.2,
            truncate_rate=0.2,
        )
        a = NetworkFaultInjector(spec, seed=7)
        b = NetworkFaultInjector(spec, seed=7)
        keys = [(f"claim#{i}", attempt) for i in range(40) for attempt in (0, 1)]
        decisions = [a.decide(*k) for k in keys]
        assert decisions == [b.decide(*k) for k in keys]
        # Full-rate spec faults every request, and all kinds appear.
        assert None not in decisions
        assert {DROP, DROP_RESPONSE, DELAY, DUPLICATE, TRUNCATE} <= set(
            decisions
        )

    def test_different_seeds_differ(self):
        spec = NetworkFaultSpec(drop_rate=0.5)
        keys = [(f"upload#{i}", 0) for i in range(64)]
        a = [NetworkFaultInjector(spec, seed=1).decide(*k) for k in keys]
        b = [NetworkFaultInjector(spec, seed=2).decide(*k) for k in keys]
        assert a != b

    def test_plan_overrides_rates(self):
        spec = NetworkFaultSpec(
            drop_rate=1.0,
            plan={("claim#1", 0): None, ("claim#2", 1): TRUNCATE},
        )
        injector = NetworkFaultInjector(spec, seed=0)
        assert injector.decide("claim#1", 0) is None
        assert injector.decide("claim#2", 1) == TRUNCATE
        assert injector.decide("claim#3", 0) == DROP

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            NetworkFaultSpec(drop_rate=0.7, duplicate_rate=0.4)
        with pytest.raises(ValueError):
            NetworkFaultSpec(plan={("x#1", 0): "meteor"})

    def test_truncate_bytes_always_breaks_the_frame(self):
        injector = NetworkFaultInjector(NetworkFaultSpec(), seed=0)
        data = frame_payload({"k": "v"})
        cut = injector.truncate_bytes(data)
        assert len(cut) < len(data)
        with pytest.raises(WireError):
            unframe_payload(cut)


# -- lease table --------------------------------------------------------------


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLeaseTable:
    def table(self, **kw) -> tuple:
        clock = FakeClock()
        kw.setdefault("lease_seconds", 30.0)
        table = LeaseTable(clock=clock, **kw)
        table.add_campaign("c1", 3)
        return table, clock

    def test_claim_lease_complete_lifecycle(self):
        table, _ = self.table()
        lease = table.claim("w1")
        assert (lease.campaign_id, lease.shard_index) == ("c1", 0)
        assert lease.attempt == 1
        assert table.shard_state("c1", 0) == LEASED
        assert table.complete("c1", 0, "d0", worker="w1") == "accepted"
        assert table.shard_state("c1", 0) == DONE
        assert table.state_counts() == {
            PENDING: 2, LEASED: 0, DONE: 1, FAILED: 0,
        }

    def test_expiry_requeues_and_renewal_prevents_it(self):
        table, clock = self.table()
        kept = table.claim("w1")
        lost = table.claim("w2")
        clock.advance(20)
        assert table.renew(kept.lease_id, "w1") == clock.now + 30.0
        clock.advance(15)  # lost: 35s unrenewed; kept: 15s since renewal
        expired = table.expire()
        assert expired == [("c1", lost.shard_index)]
        assert table.shard_state("c1", lost.shard_index) == PENDING
        assert table.shard_state("c1", kept.shard_index) == LEASED
        assert obs.resilience_event_counts().get("lease_expired") == 1
        # The re-claim is attempt 2, and the stale lease id is dead.
        again = table.claim("w3")
        assert again.shard_index == lost.shard_index
        assert again.attempt == 2
        assert table.renew(lost.lease_id, "w2") is None

    def test_bounded_retries_park_shard_as_failed(self):
        table, clock = self.table(max_attempts=2)
        for _ in range(2):
            assert table.claim("w1", ("c1", 0)) is not None
            clock.advance(31)
            table.expire()
        assert table.shard_state("c1", 0) == FAILED
        assert table.claim("w1", ("c1", 0)) is None
        assert table.has_failed()
        assert obs.resilience_event_counts().get("lease_exhausted") == 1
        # A straggler's valid upload still heals the failed shard.
        assert table.complete("c1", 0, "dX") == "accepted"
        assert not table.has_failed()

    def test_duplicate_completion_is_idempotent(self):
        table, _ = self.table()
        table.claim("w1")
        assert table.complete("c1", 0, "same") == "accepted"
        assert table.complete("c1", 0, "same") == "duplicate"
        assert table.shard_digest("c1", 0) == "same"
        assert "lease_digest_mismatch" not in obs.resilience_event_counts()

    def test_conflicting_completion_is_a_mismatch(self):
        table, _ = self.table()
        table.claim("w1")
        assert table.complete("c1", 0, "first") == "accepted"
        assert table.complete("c1", 0, "second", worker="w2") == "mismatch"
        # The recorded digest is untouched by the loser.
        assert table.shard_digest("c1", 0) == "first"
        assert obs.resilience_event_counts()["lease_digest_mismatch"] == 1

    def test_late_completion_after_expiry_is_accepted(self):
        table, clock = self.table()
        lease = table.claim("w1")
        clock.advance(31)
        table.expire()
        assert table.complete(
            "c1", lease.shard_index, "late", worker="w1"
        ) == "accepted"

    def test_unknown_shard(self):
        table, _ = self.table()
        assert table.complete("nope", 0, "d") == "unknown"

    def test_pre_completed_registration(self):
        table, _ = self.table()
        table.add_campaign("c2", 2, done=[(0, "d0")])
        assert table.shard_state("c2", 0) == DONE
        assert table.pending_keys() == [
            ("c1", 0), ("c1", 1), ("c1", 2), ("c2", 1),
        ]

    def test_heartbeats_track_every_verb(self):
        table, clock = self.table()
        lease = table.claim("w1")
        t_claim = clock.now
        clock.advance(5)
        table.renew(lease.lease_id, "w2")
        clock.advance(5)
        table.complete("c1", 0, "d", worker="w3")
        beats = table.worker_heartbeats()
        assert beats["w1"] == t_claim
        assert beats["w2"] == t_claim + 5
        assert beats["w3"] == t_claim + 10

    def test_publish_lease_metrics_renders_gauges(self):
        table, _ = self.table()
        table.claim("w1")
        table.complete("c1", 0, "d", worker="w1")
        with obs.tracing(collect_metrics=True) as tracer:
            publish_lease_metrics(table)
            text = tracer.metrics.render_text()
        assert 'repro_service_leases{state="pending"} 2' in text
        assert 'repro_service_leases{state="done"} 1' in text
        assert "repro_service_queue_depth 2" in text
        assert 'repro_service_worker_last_heartbeat{worker="w1"}' in text

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseTable(lease_seconds=0)
        with pytest.raises(ValueError):
            LeaseTable(max_attempts=0)


# -- coordinator + worker end to end ------------------------------------------


def quiet(*args) -> None:
    pass


@pytest.fixture()
def coordinator(tmp_path):
    coord = Coordinator(tmp_path, lease_seconds=10.0, log=quiet)
    with CoordinatorServer(coord) as server:
        yield coord, server


def result_digest(root: Path, spec: CampaignSpec) -> str:
    path = Path(root) / "results" / f"{spec.campaign_id()}.json"
    return json.loads(path.read_text())["digest"]


class TestDistributedCampaign:
    def test_single_worker_matches_single_host_digest(
        self, coordinator, tmp_path
    ):
        coord, server = coordinator
        spec = small_spec()
        reference = run_campaign(spec).digest()
        TransportClient(server.url).call("submit", {"spec": spec.to_dict()})
        assert run_worker(server.url, once=True, log=quiet) == 0
        assert result_digest(tmp_path, spec) == reference
        # The result came through checkpoints + store too: a fresh
        # coordinator over the same root completes it at submit time.
        coord2 = Coordinator(tmp_path, log=quiet)
        assert coord2.submit(spec) == spec.campaign_id()
        assert coord2.drained()

    def test_two_workers_fault_storm_matches_reference(
        self, tmp_path
    ):
        spec = small_spec(n_blocks=8, shards=4, seed=9)
        reference = run_campaign(spec).digest()
        coord = Coordinator(tmp_path, lease_seconds=3.0, log=quiet)
        storm = NetworkFaultSpec(
            drop_rate=0.12,
            drop_response_rate=0.12,
            delay_rate=0.10,
            duplicate_rate=0.12,
            truncate_rate=0.12,
            delay_seconds=0.01,
        )
        with CoordinatorServer(coord) as server:
            TransportClient(server.url).call(
                "submit", {"spec": spec.to_dict()}
            )
            codes = {}

            def worker(n: int) -> None:
                codes[n] = run_worker(
                    server.url,
                    worker_id=f"w{n}",
                    once=True,
                    poll_seconds=0.05,
                    retries=8,
                    fault_injector=NetworkFaultInjector(storm, seed=n),
                    log=quiet,
                )

            threads = [
                threading.Thread(target=worker, args=(n,))
                for n in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert codes == {0: 0, 1: 0}
        assert result_digest(tmp_path, spec) == reference
        # The storm actually bit: retries and wire rejections happened.
        events = obs.resilience_event_counts()
        assert events.get("transport_retry", 0) > 0
        assert events.get("wire_reject", 0) > 0

    def test_abandoned_lease_requeues_to_another_worker(self, tmp_path):
        spec = small_spec()
        reference = run_campaign(spec).digest()
        coord = Coordinator(tmp_path, lease_seconds=0.2, log=quiet)
        with CoordinatorServer(coord) as server:
            client = TransportClient(server.url)
            client.call("submit", {"spec": spec.to_dict()})
            # A "worker" that claims a shard and silently dies.
            claimed = client.call("claim", {"worker": "zombie"})
            assert claimed["work"] is not None
            time.sleep(0.25)
            assert run_worker(
                server.url, worker_id="live", once=True,
                poll_seconds=0.05, log=quiet,
            ) == 0
        assert result_digest(tmp_path, spec) == reference
        assert obs.resilience_event_counts().get("lease_expired", 0) >= 1

    def test_duplicate_upload_is_idempotent_over_the_wire(
        self, coordinator, tmp_path
    ):
        coord, server = coordinator
        spec = small_spec(shards=1)
        client = TransportClient(server.url)
        client.call("submit", {"spec": spec.to_dict()})
        work = client.call("claim", {"worker": "w"})["work"]
        from repro.service.campaign import run_shard

        agg = run_shard(spec, work["lo"], work["hi"])
        state = agg.to_state()
        upload = {
            "campaign": work["campaign"],
            "shard": work["shard"],
            "lease_id": work["lease_id"],
            "worker": "w",
            "state": state,
            "digest": aggregate_state_digest(state),
        }
        assert client.call("upload", upload)["status"] == "accepted"
        assert client.call("upload", upload)["status"] == "duplicate"
        assert result_digest(tmp_path, spec) == run_campaign(spec).digest()

    def test_divergent_upload_is_quarantined(self, coordinator, tmp_path):
        coord, server = coordinator
        spec = small_spec(shards=1)
        client = TransportClient(server.url)
        client.call("submit", {"spec": spec.to_dict()})
        work = client.call("claim", {"worker": "good"})["work"]
        from repro.service.campaign import run_shard

        agg = run_shard(spec, work["lo"], work["hi"])
        state = agg.to_state()
        good = {
            "campaign": work["campaign"],
            "shard": work["shard"],
            "lease_id": work["lease_id"],
            "worker": "good",
            "state": state,
            "digest": aggregate_state_digest(state),
        }
        assert client.call("upload", good)["status"] == "accepted"
        # A broken worker recomputed the shard to a different answer.
        evil_state = json.loads(json.dumps(state))
        evil_state["n_trials"] = 9999
        evil = dict(
            good,
            worker="evil",
            state=evil_state,
            digest=aggregate_state_digest(evil_state),
        )
        assert client.call("upload", evil)["status"] == "quarantined"
        qdir = Path(tmp_path) / "quarantine"
        assert list(qdir.glob("*.json")), "quarantine file missing"
        assert obs.resilience_event_counts()["lease_digest_mismatch"] == 1
        # The merge kept the first answer.
        assert result_digest(tmp_path, spec) == run_campaign(spec).digest()

    def test_upload_with_lying_digest_is_quarantined(
        self, coordinator, tmp_path
    ):
        coord, server = coordinator
        spec = small_spec(shards=1)
        client = TransportClient(server.url)
        client.call("submit", {"spec": spec.to_dict()})
        work = client.call("claim", {"worker": "w"})["work"]
        reply = client.call(
            "upload",
            {
                "campaign": work["campaign"],
                "shard": work["shard"],
                "lease_id": work["lease_id"],
                "worker": "w",
                "state": {"fake": 1},
                "digest": "0" * 64,
            },
        )
        assert reply["status"] == "quarantined"
        assert (
            obs.resilience_event_counts()["upload_digest_invalid"] == 1
        )

    def test_worker_quarantine_raises_terminal_error(self, tmp_path):
        # While the worker is mid-shard (trial_delay stretches it), an
        # impostor completes the same shard with a *valid but
        # different* aggregate (a partial trial range).  The worker's
        # honest upload then contradicts the recorded digest — the
        # coordinator quarantines it and the worker must surface the
        # terminal error (CLI exit 4), not swallow it.
        from repro.service.campaign import run_shard

        spec = small_spec(shards=1)
        coord = Coordinator(tmp_path, log=quiet)
        with CoordinatorServer(coord) as server:
            client = TransportClient(server.url)
            cid = client.call("submit", {"spec": spec.to_dict()})[
                "campaign"
            ]

            def impostor() -> None:
                partial = run_shard(spec, 0, 1).to_state()
                coord.upload(
                    {
                        "campaign": cid,
                        "shard": 0,
                        "worker": "impostor",
                        "state": partial,
                        "digest": aggregate_state_digest(partial),
                    }
                )

            timer = threading.Timer(0.4, impostor)
            timer.start()
            try:
                with pytest.raises(LeaseQuarantinedError):
                    run_worker(
                        server.url, once=True, trial_delay=0.15,
                        log=quiet,
                    )
            finally:
                timer.cancel()
        assert obs.resilience_event_counts()["lease_digest_mismatch"] == 1

    def test_unknown_campaign_upload(self, coordinator):
        coord, server = coordinator
        reply = TransportClient(server.url).call(
            "upload",
            {"campaign": "ghost", "shard": 0, "state": {}, "digest": ""},
        )
        assert reply["status"] == "unknown"

    def test_tenant_fair_share_alternates_claims(self, coordinator):
        coord, server = coordinator
        client = TransportClient(server.url)
        # Distinct seeds: campaign ids are content-addressed (tenant
        # excluded), so identical science would collapse to one id.
        for seed, tenant in ((1, "alice"), (2, "bob")):
            client.call(
                "submit",
                {"spec": small_spec(tenant=tenant, seed=seed).to_dict()},
            )
        tenants = []
        for _ in range(4):
            work = client.call("claim", {"worker": "w"})["work"]
            tenants.append(
                CampaignSpec.from_dict(work["spec"]).tenant
            )
        # Least-dispatched-first alternates: neither tenant gets two
        # claims before the other has one.
        assert sorted(tenants[:2]) == ["alice", "bob"]
        assert sorted(tenants[2:]) == ["alice", "bob"]

    def test_status_and_metrics_served_on_one_port(self, coordinator):
        coord, server = coordinator
        spec = small_spec()
        with obs.tracing(collect_metrics=True):
            TransportClient(server.url).call(
                "submit", {"spec": spec.to_dict()}
            )
            TransportClient(server.url).call("claim", {"worker": "w1"})
            status = unframe_payload(
                urllib.request.urlopen(f"{server.url}/status").read()
            )
            assert status["leases"][LEASED] == 1
            assert status["campaigns"][spec.campaign_id()]["shards"] == 3
            metrics = (
                urllib.request.urlopen(f"{server.url}/metrics")
                .read()
                .decode()
            )
        assert 'repro_service_leases{state="leased"} 1' in metrics
        assert "repro_service_queue_depth 2" in metrics
        assert 'repro_service_worker_last_heartbeat{worker="w1"}' in metrics

    def test_torn_request_gets_400_and_client_retries_past_it(
        self, coordinator
    ):
        coord, server = coordinator
        spec = small_spec()
        # Truncate the first submit attempt; the retry goes through.
        injector = NetworkFaultInjector(
            NetworkFaultSpec(plan={("submit#1", 0): TRUNCATE}), seed=0
        )
        client = TransportClient(server.url, fault_injector=injector)
        reply = client.call("submit", {"spec": spec.to_dict()})
        assert reply["campaign"] == spec.campaign_id()
        events = obs.resilience_event_counts()
        assert events.get("wire_reject", 0) == 1
        assert events.get("transport_retry", 0) == 1

    def test_unreachable_coordinator_exhausts_to_error(self):
        client = TransportClient(
            "http://127.0.0.1:9", retries=1, timeout=0.2
        )
        with pytest.raises(CoordinatorUnreachable):
            client.call("claim", {"worker": "w"})

    def test_worker_degrades_to_local_spool(self, tmp_path):
        spec = small_spec()
        reference = run_campaign(spec).digest()
        submit_job(tmp_path, spec)
        code = run_worker(
            "http://127.0.0.1:9",
            root=tmp_path,
            retries=0,
            once=True,
            log=quiet,
        )
        assert code == 0
        assert result_digest(tmp_path, spec) == reference
        assert (
            obs.resilience_event_counts()["worker_degrade_local"] == 1
        )


# -- spool hardening ----------------------------------------------------------


class TestSpoolQuarantine:
    def test_malformed_job_quarantined_not_fatal(self, tmp_path):
        spec = small_spec()
        submit_job(tmp_path, spec)
        dirs = service_dirs(tmp_path)
        bad = dirs["jobs"] / "torn.json"
        bad.write_text('{"name": "half a spec')
        warnings = []
        specs = pending_jobs(tmp_path, log=warnings.append)
        assert specs == [spec]
        assert not bad.exists()
        assert (dirs["jobs"] / "torn.json.corrupt").exists()
        assert any("torn.json" in w for w in warnings)
        assert obs.resilience_event_counts()["spool_corrupt"] == 1
        # Quarantined files leave the glob: the next poll is clean.
        assert pending_jobs(tmp_path, log=warnings.append) == [spec]
        assert obs.resilience_event_counts()["spool_corrupt"] == 1


# -- the CLI surface ----------------------------------------------------------


class TestWorkerCli:
    def test_worker_verb_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "worker",
                "--connect", "http://127.0.0.1:1",
                "--once",
                "--retries", "0",
                "--worker-id", "w0",
            ]
        )
        assert args.command == "worker"
        assert args.connect == "http://127.0.0.1:1"
        assert args.retries == 0

    def test_serve_port_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--root", "r", "--port", "0", "--lease-seconds", "5"]
        )
        assert args.port == 0
        assert args.lease_seconds == 5.0

    def test_unreachable_maps_to_exit_5(self):
        from repro.cli import EXIT_RETRY_EXHAUSTED, main

        code = main(
            [
                "worker",
                "--connect", "http://127.0.0.1:9",
                "--retries", "0",
            ]
        )
        assert code == EXIT_RETRY_EXHAUSTED


# -- full-stack chaos: subprocess coordinator + workers, one SIGKILLed --------


def _read_coordinator_url(root: Path, timeout: float = 20.0) -> str:
    deadline = time.time() + timeout
    path = root / "coordinator.json"
    while time.time() < deadline:
        if path.exists():
            try:
                return json.loads(path.read_text())["url"]
            except (ValueError, KeyError):
                pass
        time.sleep(0.05)
    raise AssertionError("coordinator.json never appeared")


@pytest.mark.slow
class TestDistributedSigkill:
    def test_worker_sigkill_resumes_bit_identical(self, tmp_path):
        spec = small_spec(n_blocks=8, shards=4, seed=13)
        reference = run_campaign(spec).digest()
        submit_job(tmp_path, spec)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        coordinator = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--root", str(tmp_path), "--once",
                "--port", "0", "--lease-seconds", "2",
                "--poll", "0.1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            url = _read_coordinator_url(Path(tmp_path))

            def spawn_worker() -> subprocess.Popen:
                return subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker",
                        "--connect", url, "--once",
                        "--poll", "0.1", "--trial-delay", "0.2",
                    ],
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                )

            victim = spawn_worker()
            survivor = spawn_worker()
            # Let the victim claim and get mid-shard, then kill it the
            # hard way: no cleanup, lease left dangling.
            time.sleep(1.2)
            victim.kill()
            victim.wait(timeout=30)
            assert survivor.wait(timeout=240) == 0
            assert coordinator.wait(timeout=60) == 0
        finally:
            for proc in (coordinator,):
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=30)
        assert result_digest(tmp_path, spec) == reference
