"""Prior-work BTB attacks (paper §11) and the BTB-flush defense."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.core.btb_attacks import (
    btb_direction_spy,
    btb_locate_branch,
    calibrate_btb_threshold,
)
from repro.cpu import PhysicalCore, Process
from repro.mitigations import BtbFlushOnContextSwitch
from repro.system.scheduler import AttackScheduler, NoiseSetting


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=81)


@pytest.fixture
def spy():
    return Process("spy")


def silent_scheduler(core):
    return AttackScheduler(core, NoiseSetting.SILENT)


class TestCalibration:
    def test_miss_slower_than_hit(self, core, spy):
        calibration = calibrate_btb_threshold(core, spy, samples=200)
        assert calibration.miss_mean > calibration.hit_mean
        assert (
            calibration.hit_mean
            < calibration.threshold
            < calibration.miss_mean
        )

    def test_gap_matches_timing_model(self, core, spy):
        calibration = calibrate_btb_threshold(core, spy, samples=400)
        gap = calibration.miss_mean - calibration.hit_mean
        assert gap == pytest.approx(core.timing.btb_miss_penalty, rel=0.3)


class TestDirectionSpy:
    @pytest.mark.parametrize("direction", [True, False])
    def test_infers_constant_direction(self, core, spy, direction):
        victim = Process("victim")
        address = 0x30_0006D
        calibration = calibrate_btb_threshold(core, spy, samples=300)
        inferred = btb_direction_spy(
            core,
            spy,
            address,
            lambda: core.execute_branch(victim, address, direction),
            calibration,
            trials=10,
            scheduler=silent_scheduler(core),
        )
        assert inferred == direction

    def test_defeated_by_btb_flush(self, core, spy):
        """The defense that motivates BranchScope: flush the BTB on
        context switch and the direction signal is gone (always reads
        'evicted')."""
        victim = Process("victim")
        address = 0x30_0006D
        calibration = calibrate_btb_threshold(core, spy, samples=300)
        core.install_mitigation(BtbFlushOnContextSwitch())
        inferred_not_taken = btb_direction_spy(
            core,
            spy,
            address,
            lambda: core.execute_branch(victim, address, False),
            calibration,
            trials=10,
            scheduler=silent_scheduler(core),
        )
        # Not-taken should have read False; with flushing every probe
        # sees a miss, so it reads True — information destroyed.
        assert inferred_not_taken is True


class TestLocateBranch:
    def test_finds_victim_set(self, core, spy):
        victim = Process("victim")
        true_address = 0x12345
        calibration = calibrate_btb_threshold(core, spy, samples=300)
        counter = {"n": 0}

        def trigger():
            counter["n"] += 1
            core.execute_branch(victim, true_address, True)

        n_sets = core.predictor.btb.n_sets
        candidates = [true_address - 7, true_address, true_address + 13]
        scores = btb_locate_branch(
            core,
            spy,
            trigger,
            candidates,
            calibration,
            trials=8,
            scheduler=silent_scheduler(core),
        )
        assert scores[0].candidate_address % n_sets == true_address % n_sets
        assert scores[0].evicted

    def test_candidates_deduplicated(self, core, spy):
        calibration = calibrate_btb_threshold(core, spy, samples=100)
        n_sets = core.predictor.btb.n_sets
        scores = btb_locate_branch(
            core,
            spy,
            lambda: None,
            [0x100, 0x100 + n_sets, 0x101],
            calibration,
            trials=2,
            scheduler=silent_scheduler(core),
        )
        assert len(scores) == 2


class TestBtbFlushDefense:
    def test_flush_fires_on_stage_gap(self, core):
        defense = BtbFlushOnContextSwitch()
        core.install_mitigation(defense)
        core.predictor.btb.allocate(0x1, 0x2)
        scheduler = silent_scheduler(core)
        scheduler.stage_gap()
        assert defense.flush_count == 1
        assert core.predictor.btb.lookup(0x1) is None
