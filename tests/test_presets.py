"""Microarchitecture presets."""

import pytest

from repro.bpu import haswell, sandy_bridge, skylake
from repro.bpu.fsm import State
from repro.bpu.presets import (
    PRESETS,
    firestorm_like,
    oryon_like,
    tage_like,
)


class TestPresetCatalog:
    def test_zoo_roster(self):
        """The three paper CPUs plus the three zoo additions."""
        assert set(PRESETS) == {
            "skylake",
            "haswell",
            "sandy_bridge",
            "tage_like",
            "firestorm_like",
            "oryon_like",
        }

    def test_names_identify_the_parts(self):
        assert "6200U" in skylake().name
        assert "4800MQ" in haswell().name
        assert "2600" in sandy_bridge().name

    def test_paper_pht_size_on_measured_machine(self):
        """§6.3 measured 16384 byte-granular entries."""
        assert skylake().bimodal_entries == 16384
        assert haswell().bimodal_entries == 16384

    def test_sandy_bridge_smaller_tables(self):
        """§7 attributes SB's higher error rates to smaller tables."""
        assert sandy_bridge().bimodal_entries < haswell().bimodal_entries
        assert sandy_bridge().gshare_entries < skylake().gshare_entries

    def test_skylake_fsm_quirk(self):
        assert skylake().fsm.taken_states_ambiguous
        assert not haswell().fsm.taken_states_ambiguous
        assert not sandy_bridge().fsm.taken_states_ambiguous

    def test_unknown_preset_names_the_options(self):
        with pytest.raises(KeyError) as exc:
            PRESETS["sklake"]
        message = str(exc.value)
        assert "sklake" in message
        assert "sandy_bridge" in message
        assert "oryon_like" in message

    def test_zoo_geometries(self):
        """The Arm/TAGE additions model the cited reverse engineering."""
        assert tage_like().fsm.n_levels == 8  # 3-bit counters
        assert tage_like().ghr_bits == 20
        assert firestorm_like().bimodal_entries == 32768
        assert firestorm_like().ghr_bits == 24
        assert oryon_like().index_hash == "fold"
        # Intel presets stay byte-granular plain-modulo indexed.
        for name in ("skylake", "haswell", "sandy_bridge"):
            assert PRESETS[name]().index_hash == "mod"

    def test_zoo_histories_exceed_index_width(self):
        """The zoo additions all need folded history (the point of them)."""
        for factory in (tage_like, firestorm_like, oryon_like):
            config = factory()
            assert config.ghr_bits > config.gshare_entries.bit_length() - 1


class TestBuild:
    @pytest.mark.parametrize("factory", list(PRESETS.values()))
    def test_build_matches_geometry(self, factory):
        config = factory()
        predictor = config.build()
        assert predictor.bimodal.pht.n_entries == config.bimodal_entries
        assert predictor.gshare.pht.n_entries == config.gshare_entries
        assert predictor.ghr.length == config.ghr_bits
        assert len(predictor.selector) == config.selector_entries
        assert len(predictor.bit) == config.bit_sets
        assert len(predictor.btb) == config.btb_sets

    def test_builds_are_independent(self):
        config = haswell()
        a, b = config.build(), config.build()
        a.execute(0x100, True)
        assert b.bimodal_state(0x100) is State.WN

    def test_initial_state_applied(self):
        from dataclasses import replace

        config = replace(haswell(), initial_state=State.ST)
        predictor = config.build()
        assert predictor.bimodal_state(0x1234) is State.ST


class TestScaled:
    def test_scaling_divides_tables(self):
        config = haswell().scaled(16)
        assert config.bimodal_entries == 1024
        assert config.selector_entries == 256

    def test_scaling_preserves_fsm_and_history(self):
        config = skylake().scaled(8)
        assert config.fsm.taken_states_ambiguous
        assert config.ghr_bits == skylake().ghr_bits

    def test_scaling_floors_at_four(self):
        config = haswell().scaled(100_000)
        assert config.bimodal_entries >= 4

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            haswell().scaled(0)

    def test_scaled_name_distinct(self):
        assert haswell().scaled(4).name != haswell().name
