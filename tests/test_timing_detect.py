"""Timestamp-counter detection (paper §8, Figures 7-9)."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.bpu.fsm import State
from repro.core.timing_detect import (
    calibrate_timing,
    latency_experiment,
    probe_state_latencies,
    timing_error_rate,
)
from repro.cpu import PhysicalCore, Process
from repro.cpu.timing import TimingModel

ADDRESS = 0x30_0006D


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=17)


@pytest.fixture
def spy():
    return Process("spy")


class TestLatencyExperiment:
    @pytest.mark.parametrize("taken", [True, False])
    def test_miss_slower_than_hit_warm(self, core, spy, taken):
        """Figure 7: misprediction slowdown present for both directions."""
        hit = latency_experiment(
            core, spy, ADDRESS, n=800, taken=taken, correct=True
        )
        miss = latency_experiment(
            core, spy, ADDRESS, n=800, taken=taken, correct=False
        )
        assert miss.second.mean() > hit.second.mean()

    def test_first_execution_noisier_than_second(self, core, spy):
        samples = latency_experiment(
            core, spy, ADDRESS, n=800, taken=True, correct=True
        )
        assert samples.first.std() > samples.second.std()
        assert samples.first.mean() > samples.second.mean()

    def test_correctness_of_scenario_setup(self, core, spy):
        """The experiment really produces hits (and misses) as labelled."""
        from repro.cpu.counters import CounterKind

        counters = core.counters_for(spy)
        before = counters.read(CounterKind.BRANCH_MISSES)
        latency_experiment(core, spy, ADDRESS, n=50, taken=True, correct=True)
        assert counters.read(CounterKind.BRANCH_MISSES) == before
        latency_experiment(core, spy, ADDRESS, n=50, taken=True, correct=False)
        assert counters.read(CounterKind.BRANCH_MISSES) == before + 100


class TestTimingErrorRate:
    def setup_method(self):
        self.timing = TimingModel()
        self.rng = np.random.default_rng(23)

    def test_first_measurement_error_band(self):
        """Figure 8: single first-measurement error in the 20-30% band."""
        error = timing_error_rate(
            self.timing, self.rng, n_measurements=1, measurement=1
        )
        assert 0.12 < error < 0.40

    def test_second_measurement_error_band(self):
        """Figure 8: single second-measurement error around 10%."""
        error = timing_error_rate(
            self.timing, self.rng, n_measurements=1, measurement=2
        )
        assert 0.02 < error < 0.20

    def test_error_decreases_with_averaging(self):
        errors = [
            timing_error_rate(
                self.timing, self.rng, n_measurements=n, measurement=2
            )
            for n in (1, 5, 10)
        ]
        assert errors[0] > errors[1] >= errors[2]

    def test_error_near_zero_at_ten_measurements(self):
        error = timing_error_rate(
            self.timing, self.rng, n_measurements=10, measurement=2
        )
        assert error < 0.02

    def test_first_worse_than_second(self):
        first = timing_error_rate(
            self.timing, self.rng, n_measurements=3, measurement=1
        )
        second = timing_error_rate(
            self.timing, self.rng, n_measurements=3, measurement=2
        )
        assert first > second

    def test_invalid_measurement_index(self):
        with pytest.raises(ValueError):
            timing_error_rate(
                self.timing, self.rng, n_measurements=1, measurement=3
            )


class TestProbeStateLatencies:
    def test_states_distinguishable_by_timing(self, core, spy):
        """Figure 9: each probe variant separates the states it should."""
        results = probe_state_latencies(core, spy, ADDRESS, n=400)
        nn = results["NN"]
        tt = results["TT"]
        # NN probe: taken-side states mispredict (slow), not-taken hit.
        assert nn[State.ST][0] > nn[State.SN][0]
        # TT probe: the mirror image.
        assert tt[State.SN][0] > tt[State.ST][0]

    def test_second_measurement_reflects_fsm_evolution(self, core, spy):
        """From WT, an NN probe misses then hits: first slow, second fast."""
        results = probe_state_latencies(core, spy, ADDRESS, n=400)
        mean_first, _, mean_second, _ = results["NN"][State.WT]
        assert mean_first > mean_second


class TestCalibrateTiming:
    def test_threshold_between_means(self, core, spy):
        calibration = calibrate_timing(core, spy, n=500)
        assert calibration.hit_mean < calibration.threshold < calibration.miss_mean

    def test_classification(self, core, spy):
        calibration = calibrate_timing(core, spy, n=500)
        assert calibration.is_miss(int(calibration.miss_mean))
        assert not calibration.is_miss(int(calibration.hit_mean))

    def test_detection_accuracy_on_fresh_samples(self, core, spy):
        """The calibrated threshold classifies >85% of warm samples."""
        calibration = calibrate_timing(core, spy, n=500)
        hits = latency_experiment(
            core, spy, 0x1234, n=400, taken=True, correct=True
        ).second
        misses = latency_experiment(
            core, spy, 0x1234, n=400, taken=True, correct=False
        ).second
        hit_ok = np.mean([not calibration.is_miss(int(l)) for l in hits])
        miss_ok = np.mean([calibration.is_miss(int(l)) for l in misses])
        # Single warm measurements carry ~10% pairwise error (§8), which
        # corresponds to ~80% single-sample threshold accuracy.
        assert hit_ok > 0.72 and miss_ok > 0.72
