"""Covert channel: dictionary derivation and end-to-end transmission."""

import numpy as np
import pytest

from repro.bpu import haswell, sandy_bridge, skylake
from repro.bpu.fsm import State, skylake_fsm, textbook_2bit_fsm
from repro.core.covert import (
    CovertChannel,
    CovertConfig,
    build_dictionary,
    error_rate,
)
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting

SMALL_BLOCK = 8000


def small_channel(preset, setting, seed=42, config=None):
    core = PhysicalCore(preset().scaled(16), seed=seed)
    config = config or CovertConfig(block_branches=SMALL_BLOCK)
    channel = CovertChannel.for_processes(
        core, Process("victim"), Process("spy"), setting=setting, config=config
    )
    return core, channel


class TestBuildDictionary:
    def test_default_working_point_textbook(self):
        d = build_dictionary(textbook_2bit_fsm(), State.SN, (True, True))
        # Victim taken: SN->WN, probe TT = MH.  Victim not-taken: MM.
        assert d["MH"] == 1 and d["MM"] == 0
        # Extended patterns decided by the second probe.
        assert d["HH"] == 1 and d["HM"] == 0

    def test_default_working_point_skylake(self):
        d = build_dictionary(skylake_fsm(), State.SN, (True, True))
        assert d["MH"] == 1 and d["MM"] == 0

    def test_st_nn_working_point_textbook(self):
        """Figure 6's dictionary: MM,HM -> one bit; MH,HH -> the other."""
        d = build_dictionary(
            textbook_2bit_fsm(), State.ST, (False, False), taken_bit=1
        )
        assert d["MM"] == 1 and d["HM"] == 1
        assert d["MH"] == 0 and d["HH"] == 0

    def test_skylake_ambiguous_working_point_rejected(self):
        """Priming ST and probing NN cannot distinguish on Skylake —
        the §6.1 ambiguity must surface as an explicit error."""
        with pytest.raises(ValueError):
            build_dictionary(skylake_fsm(), State.ST, (False, False))

    def test_polarity_flip(self):
        d0 = build_dictionary(
            textbook_2bit_fsm(), State.SN, (True, True), taken_bit=0
        )
        d1 = build_dictionary(
            textbook_2bit_fsm(), State.SN, (True, True), taken_bit=1
        )
        assert all(d0[p] == 1 - d1[p] for p in d0)

    def test_covers_all_four_patterns(self):
        d = build_dictionary(textbook_2bit_fsm(), State.SN, (True, True))
        assert set(d) == {"MM", "MH", "HM", "HH"}


class TestErrorRate:
    def test_zero_for_identical(self):
        assert error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_counts_mismatches(self):
        assert error_rate([1, 0, 1, 1], [1, 1, 1, 0]) == 0.5

    def test_empty(self):
        assert error_rate([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            error_rate([1], [1, 0])


class TestTransmission:
    def test_perfect_in_silent_setting(self):
        _, channel = small_channel(haswell, NoiseSetting.SILENT)
        bits = np.random.default_rng(0).integers(0, 2, 120).tolist()
        assert channel.transmit(bits) == bits

    def test_perfect_in_silent_setting_skylake(self):
        _, channel = small_channel(skylake, NoiseSetting.SILENT)
        bits = np.random.default_rng(0).integers(0, 2, 120).tolist()
        assert channel.transmit(bits) == bits

    def test_all_zero_and_all_one_payloads(self):
        """Table 2's payload variants."""
        _, channel = small_channel(sandy_bridge, NoiseSetting.SILENT)
        assert channel.transmit([0] * 60) == [0] * 60
        assert channel.transmit([1] * 60) == [1] * 60

    def test_low_error_under_isolated_noise(self):
        _, channel = small_channel(haswell, NoiseSetting.ISOLATED)
        bits = np.random.default_rng(1).integers(0, 2, 300).tolist()
        received = channel.transmit(bits)
        # Scaled-down core has 1024 PHT entries, so noise aliases ~16x
        # more often than on the real 16384-entry table; 10% is already
        # conservative here, full-size runs are benchmarked separately.
        assert error_rate(bits, received) < 0.10

    def test_transmit_bit_returns_int(self):
        _, channel = small_channel(haswell, NoiseSetting.SILENT)
        assert channel.transmit_bit(1) in (0, 1)

    def test_custom_sender_callable(self):
        """The channel works with any sender, e.g. an enclave step."""
        core = PhysicalCore(haswell().scaled(16), seed=9)
        spy = Process("spy")
        victim = Process("victim")
        config = CovertConfig(block_branches=SMALL_BLOCK)
        base = CovertChannel.for_processes(
            core, victim, spy, setting=NoiseSetting.SILENT, config=config
        )
        sent = []

        def sender(bit):
            sent.append(bit)
            core.execute_branch(victim, base.branch_address, bit == 1)

        channel = CovertChannel(
            core,
            spy,
            sender,
            base.branch_address,
            base.block,
            base.scheduler,
            config,
        )
        assert channel.transmit([1, 0, 1]) == [1, 0, 1]
        assert sent == [1, 0, 1]

    def test_timing_measurement_needs_calibration(self):
        core = PhysicalCore(haswell().scaled(16), seed=9)
        spy = Process("spy")
        config = CovertConfig(
            block_branches=SMALL_BLOCK, measurement="timing"
        )
        with pytest.raises(ValueError):
            CovertChannel.for_processes(
                core,
                Process("victim"),
                spy,
                setting=NoiseSetting.SILENT,
                config=config,
            )

    def test_timing_measurement_mode(self):
        from repro.core.timing_detect import calibrate_timing

        core = PhysicalCore(haswell().scaled(16), seed=9)
        spy = Process("spy")
        calibration = calibrate_timing(core, spy, n=400)
        config = CovertConfig(
            block_branches=SMALL_BLOCK, measurement="timing"
        )
        channel = CovertChannel.for_processes(
            core,
            Process("victim"),
            spy,
            setting=NoiseSetting.SILENT,
            config=config,
            timing_calibration=calibration,
        )
        bits = np.random.default_rng(2).integers(0, 2, 150).tolist()
        received = channel.transmit(bits)
        # Timer-based probing is inherently noisier than counters (§8);
        # single-measurement error ~10% per probe in the paper.
        assert error_rate(bits, received) < 0.25
