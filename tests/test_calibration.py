"""Pre-attack calibration: stability assessment and block search."""

import pytest

from repro.bpu import haswell
from repro.core.calibration import (
    BlockAssessment,
    CalibrationError,
    assess_block,
    find_block,
    stability_experiment,
)
from repro.core.patterns import DecodedState
from repro.core.randomizer import RandomizationBlock
from repro.cpu import PhysicalCore, Process
from repro.system.noise import NoiseModel

ADDRESS = 0x30_0006D
BLOCK_N = 8000


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=31)


@pytest.fixture
def spy():
    return Process("spy")


class TestBlockAssessment:
    def test_stability_criterion(self):
        stable = BlockAssessment(0, "MM", 0.9, "HH", 0.92)
        unstable = BlockAssessment(0, "MM", 0.8, "HH", 0.92)
        assert stable.stable and not unstable.stable

    def test_decoded_unknown_when_unstable(self):
        fsm = haswell().fsm
        assessment = BlockAssessment(0, "MM", 0.5, "HH", 0.5)
        assert assessment.decoded(fsm) is DecodedState.UNKNOWN

    def test_decoded_state_when_stable(self):
        fsm = haswell().fsm
        assessment = BlockAssessment(0, "MM", 0.95, "HH", 0.95)
        assert assessment.decoded(fsm) is DecodedState.SN


class TestAssessBlock:
    def test_pinning_block_is_stable_without_noise(self, core, spy):
        compiled = self._find_pinning(core, spy)
        assessment = assess_block(
            core,
            spy,
            compiled,
            ADDRESS,
            repetitions=25,
            noise=NoiseModel.silent(),
        )
        assert assessment.stable
        assert assessment.tt_frequency == 1.0
        assert assessment.nn_frequency == 1.0

    def test_assessment_restores_core_state(self, core, spy):
        compiled = self._find_pinning(core, spy)
        checkpoint = core.checkpoint()
        assess_block(
            core, spy, compiled, ADDRESS,
            repetitions=10, noise=NoiseModel.silent(),
        )
        after = core.checkpoint()
        assert (
            checkpoint["predictor"]["bimodal"] == after["predictor"]["bimodal"]
        ).all()
        assert checkpoint["clock"] == after["clock"]

    @staticmethod
    def _find_pinning(core, spy):
        for seed in range(100):
            block = RandomizationBlock.generate(seed, n_branches=BLOCK_N)
            row = block.entry_fold(core, spy, ADDRESS)
            if (row == row[0]).all():
                return block.compile(core, spy)
        raise AssertionError("no pinning block in 100 seeds")


class TestFindBlock:
    def test_finds_block_for_each_strong_state(self, core, spy):
        for desired in (DecodedState.SN, DecodedState.ST):
            compiled = find_block(
                core,
                spy,
                ADDRESS,
                desired,
                block_branches=BLOCK_N,
                repetitions=15,
                max_candidates=300,
                noise=NoiseModel.silent(),
            )
            assert compiled.pins_entry(core, ADDRESS)
            row = compiled.target_entry_map(core, ADDRESS)
            fsm = core.predictor.bimodal.pht.fsm
            assert fsm.public_state(int(row[0])).name == desired.value

    def test_raises_when_no_candidate_works(self, core, spy):
        with pytest.raises(CalibrationError):
            find_block(
                core,
                spy,
                ADDRESS,
                DecodedState.SN,
                block_branches=50,  # far too small to pin anything
                repetitions=5,
                max_candidates=5,
                noise=NoiseModel.silent(),
            )


class TestStabilityExperiment:
    def test_produces_one_assessment_per_block(self):
        assessments = stability_experiment(
            lambda: PhysicalCore(haswell().scaled(16), seed=31),
            ADDRESS,
            n_blocks=6,
            block_branches=BLOCK_N,
            repetitions=10,
            noise=NoiseModel.silent(),
        )
        assert len(assessments) == 6
        assert len({a.seed for a in assessments}) == 6

    def test_majority_of_blocks_stable_like_figure4(self):
        """Figure 4a's qualitative claim: most blocks are stable."""
        assessments = stability_experiment(
            lambda: PhysicalCore(haswell().scaled(16), seed=31),
            ADDRESS,
            n_blocks=10,
            block_branches=BLOCK_N,
            repetitions=12,
            noise=NoiseModel.quiesced(),
        )
        stable = sum(a.stable for a in assessments)
        assert stable >= 5
