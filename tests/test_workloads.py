"""Workload generators and accuracy metrics."""

import numpy as np
import pytest

from repro.bpu import haswell, skylake
from repro.workloads import (
    BiasedWorkload,
    CorrelatedWorkload,
    LoopWorkload,
    MixedWorkload,
    PatternWorkload,
    measure_accuracy,
)


class TestLoopWorkload:
    def test_back_edge_shape(self):
        workload = LoopWorkload(0x1000, inner_iterations=3, outer_iterations=2)
        trace = workload.take(8)  # one outer iteration = 3 inner + 1 outer
        inner = [t for a, t in trace if a == 0x1000]
        assert inner[:3] == [True, True, False]

    def test_outer_branch_at_distinct_address(self):
        workload = LoopWorkload(0x1000)
        addresses = {a for a, _ in workload.take(100)}
        assert addresses == {0x1000, 0x1040}

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopWorkload(0x1000, inner_iterations=1)

    def test_deterministic(self):
        assert LoopWorkload(0x1000, seed=3).take(50) == LoopWorkload(
            0x1000, seed=3
        ).take(50)


class TestBiasedWorkload:
    def test_bias_respected(self):
        workload = BiasedWorkload(0x2000, seed=1, n_branches=4, bias=0.9)
        trace = workload.take(4000)
        per_address = {}
        for address, taken in trace:
            per_address.setdefault(address, []).append(taken)
        for outcomes in per_address.values():
            rate = np.mean(outcomes)
            assert rate > 0.8 or rate < 0.2  # strongly biased either way

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedWorkload(0x2000, bias=1.5)


class TestPatternWorkload:
    def test_single_address(self):
        trace = PatternWorkload(0x3000, seed=2).take(40)
        assert {a for a, _ in trace} == {0x3000}

    def test_periodicity(self):
        workload = PatternWorkload(0x3000, seed=2, pattern_bits=5)
        trace = [t for _, t in workload.take(20)]
        assert trace[:5] == trace[5:10] == trace[10:15]

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternWorkload(0x3000, pattern_bits=1)


class TestCorrelatedWorkload:
    def test_xor_invariant(self):
        trace = CorrelatedWorkload(0x4000, seed=3).take(300)
        for i in range(0, len(trace), 3):
            a, b, c = trace[i][1], trace[i + 1][1], trace[i + 2][1]
            assert c == (a ^ b)

    def test_a_and_b_unbiased(self):
        trace = CorrelatedWorkload(0x4000, seed=3).take(3000)
        a_outcomes = [t for i, (_, t) in enumerate(trace) if i % 3 == 0]
        assert 0.4 < np.mean(a_outcomes) < 0.6


class TestMixedWorkload:
    def test_typical_mixes_all_families(self):
        workload = MixedWorkload.typical(seed=4)
        addresses = {a for a, _ in workload.take(4000)}
        regions = {a >> 12 for a in addresses}
        assert len(regions) >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            MixedWorkload([], [])
        with pytest.raises(ValueError):
            MixedWorkload([LoopWorkload(0)], [1.0], burst=0)

    def test_weights_normalised(self):
        workload = MixedWorkload(
            [LoopWorkload(0), BiasedWorkload(0x1000)], [2, 2]
        )
        assert workload.weights == [0.5, 0.5]


class TestMeasureAccuracy:
    def test_report_fields(self):
        report = measure_accuracy(
            haswell().scaled(16), LoopWorkload(0x1000), n_branches=2000
        )
        assert report.branches == 2000
        assert 0.0 <= report.hybrid <= 1.0
        assert report.workload == "loops"

    def test_gshare_wins_patterns(self):
        report = measure_accuracy(
            skylake(), PatternWorkload(0x3000, seed=5), n_branches=3000
        )
        assert report.gshare > 0.9
        assert report.bimodal < 0.75
        assert report.best_component() == "gshare"

    def test_bimodal_wins_biased(self):
        report = measure_accuracy(
            skylake(), BiasedWorkload(0x2000, seed=6), n_branches=3000
        )
        assert report.bimodal > report.gshare

    def test_hybrid_tracks_best_component(self):
        for workload in (
            PatternWorkload(0x3000, seed=7),
            BiasedWorkload(0x2000, seed=8),
        ):
            report = measure_accuracy(skylake(), workload, n_branches=3000)
            assert report.hybrid >= max(report.bimodal, report.gshare) - 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_accuracy(haswell(), LoopWorkload(0), n_branches=0)
