"""Differential testing: the BPU against an independent reference model.

``ReferenceHybrid`` re-implements the hybrid predictor's architecture
naively — dictionaries, explicit per-entry FSM objects, no NumPy, no
sharing with the production code beyond the FSM *spec* tables — and a
hypothesis test drives both implementations with the same random branch
sequences, asserting identical predictions and identical observable
state at every step.  Any divergence between the clever and the obvious
implementation is a bug in one of them.
"""

from typing import Dict, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.bpu import haswell, skylake
from repro.bpu.fsm import FSMSpec


class ReferenceHybrid:
    """Obvious dictionary-based re-implementation of the predictor."""

    def __init__(self, config) -> None:
        self.config = config
        self.fsm: FSMSpec = config.fsm
        initial = self.fsm.level_for(config.initial_state)
        self.bimodal: Dict[int, int] = {}
        self.gshare: Dict[int, int] = {}
        self.selector: Dict[int, int] = {}
        self.bit: Dict[int, int] = {}  # set -> tag
        self.ghr = 0
        self._initial_level = initial
        self._selector_initial = config.selector_initial
        self._selector_max = (1 << config.selector_bits) - 1

    # -- helpers -------------------------------------------------------------

    def _bimodal_level(self, index: int) -> int:
        return self.bimodal.get(index, self._initial_level)

    def _gshare_level(self, index: int) -> int:
        return self.gshare.get(index, self._initial_level)

    def _selector_value(self, index: int) -> int:
        return self.selector.get(index, self._selector_initial)

    def _bit_tag_bits(self) -> int:
        return 12  # BranchIdentificationTable default

    # -- the architecture, spelled out ----------------------------------------

    def execute(self, address: int, taken: bool) -> bool:
        """Execute one branch; returns the final predicted direction."""
        config = self.config
        bimodal_index = address % config.bimodal_entries
        # Fold a long history to index width, spelled out independently
        # of repro.bpu.hashes.fold_history: XOR of index-width chunks.
        width = max(1, config.gshare_entries.bit_length() - 1)
        folded, remaining = 0, self.ghr
        while remaining:
            folded ^= remaining & ((1 << width) - 1)
            remaining >>= width
        gshare_index = (address ^ folded) % config.gshare_entries
        selector_index = address % config.selector_entries
        bit_set = address % config.bit_sets
        bit_tag = (address // config.bit_sets) & (
            (1 << self._bit_tag_bits()) - 1
        )

        bimodal_taken = self.fsm.predicts(self._bimodal_level(bimodal_index))
        gshare_taken = self.fsm.predicts(self._gshare_level(gshare_index))
        cold = self.bit.get(bit_set) != bit_tag
        if cold:
            predicted = bimodal_taken
        elif self._selector_value(selector_index) >= self._selector_max:
            predicted = gshare_taken
        else:
            predicted = bimodal_taken

        # Training.
        self.bimodal[bimodal_index] = self.fsm.step(
            self._bimodal_level(bimodal_index), taken
        )
        self.gshare[gshare_index] = self.fsm.step(
            self._gshare_level(gshare_index), taken
        )
        if cold:
            self.selector[selector_index] = self._selector_initial
        else:
            bimodal_correct = bimodal_taken == taken
            gshare_correct = gshare_taken == taken
            if bimodal_correct != gshare_correct:
                value = self._selector_value(selector_index)
                if gshare_correct:
                    value = min(self._selector_max, value + 1)
                else:
                    value = max(0, value - 1)
                self.selector[selector_index] = value
        self.ghr = ((self.ghr << 1) | int(taken)) & (
            (1 << config.ghr_bits) - 1
        )
        self.bit[bit_set] = bit_tag
        return predicted


@st.composite
def branch_sequences(draw):
    """Random branch streams biased to create collisions and patterns."""
    n_addresses = draw(st.integers(1, 6))
    addresses = draw(
        st.lists(
            st.integers(0, 1 << 20),
            min_size=n_addresses,
            max_size=n_addresses,
            unique=True,
        )
    )
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_addresses - 1), st.booleans()
            ),
            max_size=120,
        )
    )
    return [(addresses[i], taken) for i, taken in ops]


@pytest.mark.parametrize("preset", [haswell, skylake])
class TestDifferential:
    @given(sequence=branch_sequences())
    @settings(max_examples=60, deadline=None)
    def test_predictions_match_reference(self, preset, sequence):
        config = preset().scaled(64)
        production = config.build()
        reference = ReferenceHybrid(config)
        for address, taken in sequence:
            expected = reference.execute(address, taken)
            actual = production.execute(address, taken).taken
            assert actual == expected, (address, taken)

    @given(sequence=branch_sequences())
    @settings(max_examples=40, deadline=None)
    def test_observable_state_matches_reference(self, preset, sequence):
        config = preset().scaled(64)
        production = config.build()
        reference = ReferenceHybrid(config)
        for address, taken in sequence:
            reference.execute(address, taken)
            production.execute(address, taken)
        # Compare the full bimodal PHT (the attack's observable)...
        for index in range(config.bimodal_entries):
            assert production.bimodal.pht.level(index) == (
                reference.bimodal.get(
                    index, reference._initial_level
                )
            ), index
        # ...the GHR, and the selector.
        assert production.ghr.value == reference.ghr
        for index in range(config.selector_entries):
            assert production.selector.counters[index] == (
                reference.selector.get(index, config.selector_initial)
            ), index
