"""Montgomery ladder: arithmetic correctness and leak structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bpu import haswell
from repro.cpu import PhysicalCore, Process
from repro.victims.montgomery import (
    CurvePoint,
    MontgomeryLadderVictim,
    TinyCurve,
    ladder_scalar_mult,
    montgomery_ladder_pow,
)


class TestLadderPow:
    @given(
        base=st.integers(0, 10_000),
        exponent=st.integers(0, 10_000),
        modulus=st.integers(2, 10_000),
    )
    @settings(max_examples=150)
    def test_matches_builtin_pow(self, base, exponent, modulus):
        assert montgomery_ladder_pow(base, exponent, modulus) == pow(
            base, exponent, modulus
        )

    def test_branch_hook_sees_exponent_bits_msb_first(self):
        bits = []
        exponent = 0b1011001
        montgomery_ladder_pow(3, exponent, 1009, branch_hook=bits.append)
        assert bits == [True, False, True, True, False, False, True]

    def test_validation(self):
        with pytest.raises(ValueError):
            montgomery_ladder_pow(2, 3, 0)
        with pytest.raises(ValueError):
            montgomery_ladder_pow(2, -1, 7)


class TestTinyCurve:
    def setup_method(self):
        self.curve = TinyCurve()
        self.point = self.curve.base_point()

    def test_base_point_on_curve(self):
        assert self.curve.is_on_curve(self.point)

    def test_infinity_is_identity(self):
        inf = CurvePoint.infinity()
        assert self.curve.add(inf, self.point) == self.point
        assert self.curve.add(self.point, inf) == self.point

    def test_inverse_sums_to_infinity(self):
        negated = CurvePoint(self.point.x, (-self.point.y) % self.curve.p)
        assert self.curve.add(self.point, negated).is_infinity

    def test_addition_stays_on_curve(self):
        q = self.curve.double(self.point)
        r = self.curve.add(q, self.point)
        assert self.curve.is_on_curve(q)
        assert self.curve.is_on_curve(r)

    def test_addition_is_commutative(self):
        q = self.curve.double(self.point)
        assert self.curve.add(self.point, q) == self.curve.add(q, self.point)

    @given(k=st.integers(1, 200))
    @settings(max_examples=30)
    def test_ladder_matches_repeated_addition(self, k):
        expected = CurvePoint.infinity()
        for _ in range(k):
            expected = self.curve.add(expected, self.point)
        assert ladder_scalar_mult(self.curve, k, self.point) == expected

    @given(a=st.integers(1, 500), b=st.integers(1, 500))
    @settings(max_examples=30)
    def test_scalar_mult_is_additive(self, a, b):
        pa = ladder_scalar_mult(self.curve, a, self.point)
        pb = ladder_scalar_mult(self.curve, b, self.point)
        pab = ladder_scalar_mult(self.curve, a + b, self.point)
        assert self.curve.add(pa, pb) == pab

    def test_ladder_hook_leaks_scalar_bits(self):
        bits = []
        ladder_scalar_mult(self.curve, 0b1101, self.point, bits.append)
        assert bits == [True, True, False, True]

    def test_negative_scalar_rejected(self):
        with pytest.raises(ValueError):
            ladder_scalar_mult(self.curve, -1, self.point)


class TestLadderVictim:
    def test_steps_execute_key_bits_as_branches(self):
        core = PhysicalCore(haswell().scaled(16), seed=3)
        victim = MontgomeryLadderVictim(0b1011)
        directions = []
        original = core.execute_branch

        def recording(process, address, taken, target=None):
            directions.append(taken)
            return original(process, address, taken, target)

        core.execute_branch = recording
        while not victim.finished:
            victim.step(core)
        assert directions == [True, False, True, True]

    def test_result_available_after_completion(self):
        core = PhysicalCore(haswell().scaled(16), seed=3)
        victim = MontgomeryLadderVictim(12345, base=7, modulus=99991)
        while not victim.finished:
            victim.step(core)
        assert victim.result == pow(7, 12345, 99991)

    def test_begin_restarts(self):
        core = PhysicalCore(haswell().scaled(16), seed=3)
        victim = MontgomeryLadderVictim(0b101)
        while not victim.finished:
            victim.step(core)
        victim.begin()
        assert not victim.finished

    def test_step_after_finish_raises(self):
        core = PhysicalCore(haswell().scaled(16), seed=3)
        victim = MontgomeryLadderVictim(1)
        victim.step(core)
        with pytest.raises(RuntimeError):
            victim.step(core)

    def test_validation(self):
        with pytest.raises(ValueError):
            MontgomeryLadderVictim(0)

    def test_n_bits(self):
        assert MontgomeryLadderVictim(0b10110).n_bits == 5
