"""Manycore struct-of-arrays backend: differential and unit coverage.

The contract under test is *bit-identity*: the manycore engine must
return exactly the assessment list (and leave exactly the caller-visible
RNG positions) that the per-trial path produces, across presets, noise
models, checkpoint interruptions, and every fallback branch.
"""

import numpy as np
import pytest

from repro.bpu.presets import (
    firestorm_like,
    haswell,
    oryon_like,
    sandy_bridge,
    skylake,
    tage_like,
)
from repro.core.calibration import (
    DecodedState,
    draw_trial_plan,
    find_block,
    stability_experiment,
)
from repro.core.manycore import (
    ManycoreCampaignPool,
    ManycoreState,
    manycore_supported,
)
from repro.core.randomizer import RandomizationBlock
from repro.cpu.core import PhysicalCore
from repro.cpu.counters import CounterKind
from repro.cpu.process import Process
from repro.mitigations.noisy_counters import NoisyPerformanceCounters
from repro.mitigations.stochastic_fsm import StochasticFSM
from repro.obs import trace as obs
from repro.parallel import spawn_seeds
from repro.resilience.checkpoint import rng_state_digest
from repro.system.noise import NoiseModel

TARGET = 0x30_0006D

ALL_PRESETS = [
    skylake,
    haswell,
    sandy_bridge,
    tage_like,
    firestorm_like,
    oryon_like,
]


def small_factory(preset, seed=7, factor=16):
    config = preset().scaled(factor)
    return lambda: PhysicalCore(config, seed=seed)


@pytest.fixture(autouse=True)
def _clean_fallback_counts():
    obs.reset_scalar_fallbacks()
    yield
    obs.reset_scalar_fallbacks()


class TestDifferential:
    """backend='manycore' == backend='process', bit for bit."""

    @pytest.mark.parametrize("preset", ALL_PRESETS)
    def test_all_presets(self, preset):
        factory = small_factory(preset)
        kwargs = dict(
            n_blocks=10,
            block_branches=2500,
            repetitions=12,
            noise=NoiseModel.isolated(),
        )
        reference = stability_experiment(
            factory, TARGET, backend="process", **kwargs
        )
        manycore = stability_experiment(
            factory, TARGET, backend="manycore", **kwargs
        )
        assert manycore == reference

    def test_untouched_selector_path(self):
        """Blocks too small to touch the target's chooser entry exercise
        the sequential phase-3 chain; results must still match."""
        factory = small_factory(skylake, factor=4)
        kwargs = dict(
            n_blocks=16,
            block_branches=300,
            repetitions=8,
            noise=NoiseModel.noisy(),
            seed_start=100,
        )
        config = skylake().scaled(4)
        missed = sum(
            not (
                RandomizationBlock.generate(s, n_branches=300).addresses
                % config.selector_entries
                == TARGET % config.selector_entries
            ).any()
            for s in range(100, 116)
        )
        assert missed > 0  # the scenario actually covers the slow path
        reference = stability_experiment(
            factory, TARGET, backend="process", **kwargs
        )
        manycore = stability_experiment(
            factory, TARGET, backend="manycore", **kwargs
        )
        assert manycore == reference

    def test_quiesced_noise(self):
        factory = small_factory(haswell)
        kwargs = dict(
            n_blocks=8,
            block_branches=2000,
            repetitions=10,
            noise=NoiseModel.quiesced(),
        )
        reference = stability_experiment(
            factory, TARGET, backend="process", **kwargs
        )
        manycore = stability_experiment(
            factory, TARGET, backend="manycore", **kwargs
        )
        assert manycore == reference

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            stability_experiment(
                small_factory(skylake), TARGET, n_blocks=1, backend="gpu"
            )

    def test_manycore_rejects_scalar_engine(self):
        with pytest.raises(ValueError, match="fast=True"):
            stability_experiment(
                small_factory(skylake),
                TARGET,
                n_blocks=1,
                fast=False,
                backend="manycore",
            )


class TestRNGDiscipline:
    def test_shared_plan_digest_matches_scalar_stream(self):
        """Every scalar trial leaves its factory core's RNG at the same
        position; the pool's shared draw must land exactly there."""
        factory = small_factory(skylake)
        pool = ManycoreCampaignPool(
            factory,
            TARGET,
            block_branches=2000,
            repetitions=12,
            noise=NoiseModel.isolated(),
        )
        core = factory()
        draw_trial_plan(core.rng, core, repetitions=12, noise=NoiseModel.isolated())
        assert pool.rng_digest == rng_state_digest(core.rng)

    def test_nondeterministic_factory_groups_per_payload(self):
        """Distinct-seed cores form singleton groups: the pool replays
        the reference trial per payload (never the caller's fn) and the
        assessments stay bit-identical to the process backend running
        the same factory-call sequence."""
        config = skylake().scaled(16)

        def make_factory():
            seeds = iter(range(1000))
            return lambda: PhysicalCore(config, seed=next(seeds))

        kwargs = dict(
            n_blocks=3,
            block_branches=1500,
            repetitions=6,
            noise=NoiseModel.isolated(),
            seed_start=1,
        )
        reference = stability_experiment(
            make_factory(), TARGET, backend="process", **kwargs
        )
        obs.reset_scalar_fallbacks()
        manycore = stability_experiment(
            make_factory(), TARGET, backend="manycore", **kwargs
        )
        assert manycore == reference
        assert obs.scalar_fallback_counts()["manycore"] == 3

    def test_nondeterministic_factory_never_calls_fn(self):
        seeds = iter(range(1000))
        config = skylake().scaled(16)

        def factory():
            return PhysicalCore(config, seed=next(seeds))

        pool = ManycoreCampaignPool(
            factory, TARGET, block_branches=1500, repetitions=6
        )

        def fail(_seed):
            raise AssertionError("grouped mode must not call fn")

        out = pool.map(fail, [1, 2, 3])
        assert len(out) == 3 and all(a is not None for a in out)
        assert obs.scalar_fallback_counts()["manycore"] == 3


class TestFallbacks:
    @pytest.mark.parametrize(
        "mitigation", [NoisyPerformanceCounters, StochasticFSM]
    )
    def test_mitigated_core_uses_scalar_path(self, mitigation):
        config = skylake().scaled(16)

        def factory():
            core = PhysicalCore(config, seed=3)
            core.mitigations.install(mitigation())
            return core

        kwargs = dict(
            n_blocks=4,
            block_branches=1500,
            repetitions=6,
            noise=NoiseModel.isolated(),
        )
        reference = stability_experiment(
            factory, TARGET, backend="process", **kwargs
        )
        obs.reset_scalar_fallbacks()
        manycore = stability_experiment(
            factory, TARGET, backend="manycore", **kwargs
        )
        assert manycore == reference
        assert obs.scalar_fallback_counts()["manycore"] == 4

    def test_zero_gap_noise_uses_scalar_path(self):
        factory = small_factory(skylake)
        kwargs = dict(
            n_blocks=4,
            block_branches=1500,
            repetitions=6,
            noise=NoiseModel.silent(),
        )
        reference = stability_experiment(
            factory, TARGET, backend="process", **kwargs
        )
        obs.reset_scalar_fallbacks()
        manycore = stability_experiment(
            factory, TARGET, backend="manycore", **kwargs
        )
        assert manycore == reference
        assert obs.scalar_fallback_counts()["manycore"] == 4

    def test_supported_predicate(self):
        core = PhysicalCore(skylake().scaled(16), seed=0)
        assert manycore_supported(core) is None
        assert manycore_supported(core, np.array([3, 0, 5])) == (
            "unshared_structure"
        )
        core.mitigations.install(StochasticFSM())
        assert manycore_supported(core) == "mitigation"


class TestCheckpointing:
    def _kwargs(self):
        return dict(
            n_blocks=9,
            block_branches=2000,
            repetitions=10,
            noise=NoiseModel.isolated(),
        )

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        factory = small_factory(haswell)
        expected = stability_experiment(
            factory, TARGET, backend="process", **self._kwargs()
        )
        store = tmp_path / "campaign.ckpt"

        calls = {"n": 0}

        def dying_pre_trial(seed: int) -> None:
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("injected crash")

        with pytest.raises(RuntimeError):
            stability_experiment(
                factory,
                TARGET,
                backend="manycore",
                checkpoint=store,
                checkpoint_interval=3,
                pre_trial=dying_pre_trial,
                **self._kwargs(),
            )
        resumed = stability_experiment(
            factory,
            TARGET,
            backend="manycore",
            checkpoint=store,
            checkpoint_interval=3,
            resume=True,
            **self._kwargs(),
        )
        assert resumed == expected

    def test_resume_across_backends(self, tmp_path):
        """A campaign interrupted under the process backend finishes
        under manycore with the identical list (and vice versa)."""
        factory = small_factory(haswell)
        expected = stability_experiment(
            factory, TARGET, backend="process", **self._kwargs()
        )
        store = tmp_path / "campaign.ckpt"
        calls = {"n": 0}

        def dying_pre_trial(seed: int) -> None:
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("injected crash")

        with pytest.raises(RuntimeError):
            stability_experiment(
                factory,
                TARGET,
                backend="process",
                checkpoint=store,
                checkpoint_interval=3,
                pre_trial=dying_pre_trial,
                **self._kwargs(),
            )
        resumed = stability_experiment(
            factory,
            TARGET,
            backend="manycore",
            checkpoint=store,
            checkpoint_interval=3,
            resume=True,
            **self._kwargs(),
        )
        assert resumed == expected


class TestFindBlock:
    def test_manycore_winner_matches_pooled(self):
        config = haswell().scaled(16)
        kwargs = dict(
            block_branches=6000,
            repetitions=10,
            max_candidates=64,
            noise=NoiseModel.isolated(),
        )
        spy = Process("search-spy")
        core_a = PhysicalCore(config, seed=5)
        core_b = PhysicalCore(config, seed=5)
        reference = find_block(
            core_a, spy, TARGET, DecodedState.SN, workers=1,
            backend="process", **kwargs,
        )
        manycore = find_block(
            core_b, spy, TARGET, DecodedState.SN,
            backend="manycore", **kwargs,
        )
        assert manycore.block.seed == reference.block.seed
        # The search's footprint on the caller core (one entropy draw)
        # is identical too.
        assert rng_state_digest(core_a.rng) == rng_state_digest(core_b.rng)

    def test_mitigated_search_delegates(self):
        config = haswell().scaled(16)
        kwargs = dict(
            block_branches=6000,
            repetitions=10,
            max_candidates=64,
            noise=NoiseModel.isolated(),
        )
        spy = Process("search-spy")

        def build():
            core = PhysicalCore(config, seed=5)
            core.mitigations.install(NoisyPerformanceCounters(magnitude=0))
            return core

        reference = find_block(
            build(), spy, TARGET, DecodedState.SN, workers=1,
            backend="process", **kwargs,
        )
        obs.reset_scalar_fallbacks()
        manycore = find_block(
            build(), spy, TARGET, DecodedState.SN,
            backend="manycore", **kwargs,
        )
        assert manycore.block.seed == reference.block.seed
        assert obs.scalar_fallback_counts()["manycore"] >= 1


class TestCodesScalarHoist:
    """The untouched-selector chain's campaign invariants are hoisted
    into ``_SharedStructure.__init__`` — a perf regression guard for
    the plain-int-list fast path."""

    def _shared(self):
        pool = ManycoreCampaignPool(
            small_factory(skylake, factor=4),
            TARGET,
            block_branches=300,
            repetitions=64,
            noise=NoiseModel.noisy(),
        )
        pool._ensure_built()
        assert pool._shared is not None
        return pool._shared

    def test_invariants_hoisted_as_plain_lists(self):
        shared = self._shared()
        assert type(shared.drift_list) is list
        assert all(type(v) is int for v in shared.drift_list)
        assert type(shared.noise_list) is list
        assert all(type(v) is int for v in shared.noise_list)
        assert type(shared.predicts_list) is list
        assert all(type(v) is bool for v in shared.predicts_list)
        assert type(shared.out_rows) is list

    def test_chain_beats_per_call_invariant_rebuild(self):
        """Hoisting wins: the chain with invariants prebuilt must not be
        slower than the same chain paying the per-call conversion the
        hoist removed (generous margin for timer noise)."""
        import timeit

        shared = self._shared()
        rng = np.random.default_rng(0)
        shape = (shared.R2, shared.d + 2)
        row_b = rng.integers(0, shared.d, size=shape)
        row_g = rng.integers(0, shared.d, size=shape)

        def hoisted():
            shared._codes_scalar(row_b, row_g, -1)

        def rebuilding():
            [bool(shared.fsm.predicts(lv)) for lv in range(shared.d)]
            [int(v) for v in shared.drift_tsel]
            [int(v) for v in shared.noise_tag]
            shared.outcomes.tolist()
            shared._codes_scalar(row_b, row_g, -1)

        hoisted()  # warm caches before timing
        best_hoisted = min(timeit.repeat(hoisted, number=5, repeat=7))
        best_rebuilding = min(timeit.repeat(rebuilding, number=5, repeat=7))
        assert best_hoisted <= best_rebuilding * 1.10


class TestManycoreState:
    def _cores(self, n=3):
        config = skylake().scaled(32)
        return [PhysicalCore(config, seed=10 + i) for i in range(n)]

    def test_from_factory_broadcasts_and_spawns_streams(self):
        config = skylake().scaled(32)
        factory = lambda: PhysicalCore(config, seed=4)
        state = ManycoreState.from_factory(factory, 4, seed=123)
        template = factory()
        assert state.n == 4
        for row in state.bimodal_levels:
            assert (row == template.predictor.bimodal.pht.levels).all()
        for row in state.selector_counters:
            assert (row == template.predictor.selector.counters).all()
        expected = [
            rng_state_digest(np.random.default_rng(child))
            for child in spawn_seeds(123, 4)
        ]
        assert state.rng_digests() == expected

    def test_apply_compiled_matches_scalar_apply(self):
        cores = self._cores()
        spy = Process("spy")
        state = ManycoreState.from_cores(cores, process=spy)
        blocks = [
            RandomizationBlock.generate(seed, n_branches=800)
            for seed in (1, 2, 3)
        ]
        compiled = [b.compile(c, spy) for b, c in zip(blocks, cores)]
        state.apply_compiled(compiled)
        for c, core in zip(compiled, cores):
            c.apply(core, spy)
        for i, core in enumerate(cores):
            predictor = core.predictor
            assert (
                state.bimodal_levels[i] == predictor.bimodal.pht.levels
            ).all()
            assert (
                state.gshare_levels[i] == predictor.gshare.pht.levels
            ).all()
            assert (
                state.selector_counters[i] == predictor.selector.counters
            ).all()
            assert state.ghr_values[i] == predictor.ghr.value
            assert (state.bit_valid[i] == predictor.bit.valid).all()
            assert (state.bit_tags[i] == predictor.bit.tags).all()
            assert state.clock[i] == core.clock.now
            counters = core.counters_for(spy)
            assert state.branches[i] == counters.read(CounterKind.BRANCHES)
            assert state.mispredictions[i] == counters.read(
                CounterKind.BRANCH_MISSES
            )
            assert state.cycles[i] == counters.read(CounterKind.CYCLES)

    def test_apply_compiled_broadcasts_single_block(self):
        cores = self._cores(2)
        spy = Process("spy")
        state = ManycoreState.from_cores(cores, process=spy)
        compiled = RandomizationBlock.generate(9, n_branches=600).compile(
            cores[0], spy
        )
        state.apply_compiled(compiled)
        for core in cores:
            compiled.apply(core, spy)
        for i, core in enumerate(cores):
            assert (
                state.bimodal_levels[i] == core.predictor.bimodal.pht.levels
            ).all()
            assert state.ghr_values[i] == core.predictor.ghr.value

    def test_mixed_configs_rejected(self):
        a = PhysicalCore(skylake().scaled(32), seed=0)
        b = PhysicalCore(haswell().scaled(32), seed=0)
        with pytest.raises(ValueError, match="mixed configurations"):
            ManycoreState.from_cores([a, b])

    def test_wrong_config_block_rejected(self):
        cores = self._cores(1)
        spy = Process("spy")
        state = ManycoreState.from_cores(cores)
        other = PhysicalCore(haswell().scaled(32), seed=0)
        compiled = RandomizationBlock.generate(1, n_branches=500).compile(
            other, spy
        )
        with pytest.raises(ValueError, match="bound to config"):
            state.apply_compiled([compiled])
