"""Chaos suite: the resilience subsystem under injected failure.

Every recovery path gets exercised deterministically (the fault
schedule is a pure function of a seed — see
:mod:`repro.resilience.faults`), and every recovery assertion is
*bit-identical results*, not mere survival: a crash/hang/corrupt trial
chunk must retry to exactly the serial engine's output, a SIGKILL'd
campaign must resume to exactly the uninterrupted run's output, a
corrupted checkpoint must roll back to the last good generation.
"""

import os
import pickle
import warnings

import numpy as np
import pytest

from repro.bpu import haswell
from repro.core.calibration import find_block, stability_experiment
from repro.core.covert import CovertChannel, CovertConfig
from repro.core.patterns import DecodedState
from repro.cpu import PhysicalCore, Process
from repro.obs import (
    record_resilience_event,
    reset_resilience_events,
    resilience_event_counts,
)
from repro.parallel import (
    RetryExhaustedError,
    SuperviseConfig,
    TrialPool,
    fork_available,
    resolve_workers,
)
from repro.parallel.pool import WORKERS_ENV
from repro.resilience import (
    CheckpointCorruption,
    CheckpointMismatch,
    CheckpointStore,
    FaultInjector,
    FaultSpec,
    ResumableCampaign,
    rng_state_digest,
)
from repro.snapshot import state_digest
from repro.system.scheduler import NoiseSetting

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork workers"
)


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_resilience_events()
    yield
    reset_resilience_events()


def square(x):
    return x * x


# ---------------------------------------------------------------------------
# Fault injection harness


class TestFaultSpec:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultSpec(crash_rate=0.6, hang_rate=0.3, corrupt_rate=0.2)

    def test_unknown_plan_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(plan={(0, 0): "meltdown"})

    def test_zero_spec_injects_nothing(self):
        injector = FaultInjector(FaultSpec(), seed=3)
        assert all(
            injector.decide(c, a) is None for c in range(20) for a in range(3)
        )


class TestFaultInjector:
    def test_decide_is_pure_in_seed_chunk_attempt(self):
        spec = FaultSpec(crash_rate=0.3, hang_rate=0.2, corrupt_rate=0.2)
        a = FaultInjector(spec, seed=9)
        b = FaultInjector(spec, seed=9)
        table = [(c, att, a.decide(c, att)) for c in range(30) for att in (0, 1)]
        assert all(b.decide(c, att) == kind for c, att, kind in table)
        # The schedule actually contains faults and recoveries.
        kinds = {kind for _, _, kind in table}
        assert None in kinds and kinds - {None}

    def test_different_seeds_differ(self):
        spec = FaultSpec(crash_rate=0.5)
        rows = range(64)
        a = [FaultInjector(spec, seed=1).decide(c, 0) for c in rows]
        b = [FaultInjector(spec, seed=2).decide(c, 0) for c in rows]
        assert a != b

    def test_plan_overrides_rates(self):
        spec = FaultSpec(crash_rate=1.0, plan={(4, 0): None, (5, 0): "hang"})
        injector = FaultInjector(spec, seed=0)
        assert injector.decide(4, 0) is None
        assert injector.decide(5, 0) == "hang"
        assert injector.decide(6, 0) == "crash"

    def test_corrupt_bytes_flips_exactly_one_byte(self):
        injector = FaultInjector(FaultSpec(), seed=7)
        data = bytes(range(256))
        bad = injector.corrupt_bytes(data, 3, 1)
        assert len(bad) == len(data)
        diffs = [i for i, (x, y) in enumerate(zip(data, bad)) if x != y]
        assert len(diffs) == 1
        # Deterministic: same key, same flip.
        assert injector.corrupt_bytes(data, 3, 1) == bad

    def test_corrupt_file_round_trip(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"A" * 100)
        offset = FaultInjector(FaultSpec(), seed=1).corrupt_file(path)
        data = path.read_bytes()
        assert data[offset] != ord("A")
        assert sum(1 for b in data if b != ord("A")) == 1

    def test_corrupt_file_rejects_empty(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            FaultInjector(FaultSpec(), seed=1).corrupt_file(path)


# ---------------------------------------------------------------------------
# Supervised pool recovery


@needs_fork
class TestSupervisedRecovery:
    def expected(self, n=12):
        return [square(i) for i in range(n)]

    def run_pool(self, injector, *, workers=2, supervise=None, n=12):
        pool = TrialPool(
            workers,
            chunk_size=1,  # chunk_index == payload index: exact plans
            supervise=supervise,
            fault_injector=injector,
        )
        return pool.map(square, range(n))

    def test_crash_recovers_bit_identically(self):
        injector = FaultInjector(
            FaultSpec(plan={(0, 0): "crash", (5, 0): "crash"}), seed=0
        )
        assert self.run_pool(injector) == self.expected()
        counts = resilience_event_counts()
        assert counts.get("worker_crash", 0) >= 2
        assert counts.get("chunk_retry", 0) >= 2

    def test_hang_detected_and_recovered(self):
        injector = FaultInjector(
            FaultSpec(hang_seconds=10.0, plan={(2, 0): "hang"}), seed=0
        )
        sup = SuperviseConfig(
            heartbeat_timeout=0.3, backoff_base=0.01, backoff_cap=0.05
        )
        assert self.run_pool(injector, supervise=sup) == self.expected()
        counts = resilience_event_counts()
        assert counts.get("worker_hang", 0) >= 1

    def test_corrupted_frame_rejected_and_retried(self):
        injector = FaultInjector(
            FaultSpec(plan={(1, 0): "corrupt"}), seed=0
        )
        assert self.run_pool(injector) == self.expected()
        counts = resilience_event_counts()
        assert counts.get("chunk_corrupt", 0) >= 1

    def test_random_fault_storm_never_changes_results(self):
        spec = FaultSpec(crash_rate=0.25, corrupt_rate=0.15)
        sup = SuperviseConfig(backoff_base=0.01, backoff_cap=0.05)
        for workers in (2, 3):
            injector = FaultInjector(spec, seed=11)
            assert (
                self.run_pool(injector, workers=workers, supervise=sup)
                == self.expected()
            )
        assert resilience_event_counts().get("chunk_retry", 0) >= 1

    def test_retry_exhaustion_degrades_to_serial(self):
        # Chunk 0 crashes on every attempt; the pool must finish anyway,
        # loudly, by running that chunk in-process.
        plan = {(0, attempt): "crash" for attempt in range(10)}
        injector = FaultInjector(FaultSpec(plan=plan), seed=0)
        sup = SuperviseConfig(
            max_retries=2, backoff_base=0.01, backoff_cap=0.02
        )
        assert self.run_pool(injector, supervise=sup) == self.expected()
        counts = resilience_event_counts()
        assert counts.get("degrade_serial", 0) == 1
        assert counts.get("worker_crash", 0) >= 3

    def test_retry_exhaustion_raises_when_degradation_disabled(self):
        plan = {(0, attempt): "crash" for attempt in range(10)}
        injector = FaultInjector(FaultSpec(plan=plan), seed=0)
        sup = SuperviseConfig(
            max_retries=1,
            degrade_serial=False,
            backoff_base=0.01,
            backoff_cap=0.02,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            self.run_pool(injector, supervise=sup)
        assert excinfo.value.chunk_index == 0
        assert excinfo.value.last_fault == "crash"

    def test_trial_exception_propagates_not_retried(self):
        def boom(x):
            if x == 3:
                raise ValueError("bad trial")
            return x

        pool = TrialPool(2, chunk_size=1)
        with pytest.raises(ValueError, match="bad trial"):
            pool.map(boom, range(6))
        assert resilience_event_counts().get("chunk_retry", 0) == 0


class TestBackoff:
    def test_delay_grows_and_caps(self):
        sup = SuperviseConfig(
            backoff_base=0.1, backoff_cap=0.8, backoff_jitter=0.0
        )
        delays = [sup.backoff_delay(0, a) for a in range(1, 7)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert delays[-1] == pytest.approx(0.8)

    def test_jitter_is_deterministic_and_bounded(self):
        sup = SuperviseConfig(
            backoff_base=0.1, backoff_cap=2.0, backoff_jitter=0.5
        )
        d1 = sup.backoff_delay(3, 2)
        d2 = sup.backoff_delay(3, 2)
        assert d1 == d2
        base = 0.1 * 2
        assert base <= d1 <= base * 1.5
        # Different chunks decorrelate.
        assert sup.backoff_delay(4, 2) != d1


class TestEnvHardening:
    def test_invalid_env_falls_back_to_serial_with_warning(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="banana"):
            assert resolve_workers(None) == 1
        assert resilience_event_counts().get("env_workers_invalid", 0) == 1

    def test_negative_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-3")
        with pytest.warns(RuntimeWarning):
            assert resolve_workers(None) == 1

    def test_valid_env_still_honoured(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(None) == 4
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers(None) >= 1

    def test_explicit_invalid_argument_still_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(ValueError):
            resolve_workers("banana")


# ---------------------------------------------------------------------------
# Checkpoint store


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        assert store.load() is None
        state = {"fingerprint": {"x": 1}, "results": {0: [1, 2]}}
        store.save(state)
        assert store.load() == state

    def test_two_generations_and_rollback_on_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        store.save({"gen": 1})
        store.save({"gen": 2})
        assert store.previous_path.exists()
        FaultInjector(FaultSpec(), seed=5).corrupt_file(store.path)
        assert store.load() == {"gen": 1}
        # The torn file is quarantined for forensics, and the event is
        # on the always-on counters.
        assert store.corrupt_path.exists()
        assert resilience_event_counts().get("checkpoint_rollback", 0) == 1
        # The promoted generation is now current: saving continues.
        store.save({"gen": 3})
        assert store.load() == {"gen": 3}

    def test_both_generations_corrupt_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        store.save({"gen": 1})
        store.save({"gen": 2})
        injector = FaultInjector(FaultSpec(), seed=5)
        injector.corrupt_file(store.path)
        injector.corrupt_file(store.previous_path, salt=1)
        with pytest.raises(CheckpointCorruption):
            store.load()

    def test_truncated_file_rolls_back(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        store.save({"gen": 1})
        store.save({"gen": 2})
        data = store.path.read_bytes()
        store.path.write_bytes(data[: len(data) // 2])
        assert store.load() == {"gen": 1}

    def test_foreign_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        store.path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointCorruption, match="bad magic"):
            store.load()

    def test_clear_removes_all_generations(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        store.save({"gen": 1})
        store.save({"gen": 2})
        store.clear()
        assert not store.exists()
        assert store.load() is None


class TestRngStateDigest:
    def test_same_position_same_digest(self):
        a = np.random.default_rng(3)
        b = np.random.default_rng(3)
        assert rng_state_digest(a) == rng_state_digest(b)
        a.random(5)
        b.random(5)
        assert rng_state_digest(a) == rng_state_digest(b)

    def test_advanced_stream_differs(self):
        a = np.random.default_rng(3)
        before = rng_state_digest(a)
        a.random()
        assert rng_state_digest(a) != before


class TestStateDigest:
    def test_delta_and_full_checkpoints_digest_identically(self):
        core = PhysicalCore(haswell().scaled(16), seed=5)
        spy = Process("spy")
        for i in range(40):
            core.execute_branch(spy, 0x400 + i, i % 3 == 0)
        full = core.checkpoint(full=True)
        delta = core.checkpoint()
        assert state_digest(full) == state_digest(delta)

    def test_digest_tracks_machine_state(self):
        core = PhysicalCore(haswell().scaled(16), seed=5)
        spy = Process("spy")
        before = state_digest(core.checkpoint(full=True))
        core.execute_branch(spy, 0x400, True)
        after = state_digest(core.checkpoint(full=True))
        assert before != after


# ---------------------------------------------------------------------------
# Resumable campaigns


class _KillAfter:
    """A pool wrapper that dies (like SIGKILL mid-batch) after N maps."""

    def __init__(self, inner, allowed_batches):
        self.inner = inner
        self.allowed = allowed_batches

    def map(self, fn, payloads):
        if self.allowed <= 0:
            raise KeyboardInterrupt("simulated kill")
        self.allowed -= 1
        return self.inner.map(fn, payloads)


class TestResumableCampaign:
    FP = {"experiment": "unit", "n": 20}

    def test_uninterrupted_map_matches_plain(self, tmp_path):
        campaign = ResumableCampaign(
            tmp_path / "c.ckpt", fingerprint=self.FP, interval=5
        )
        out = campaign.map(TrialPool(1), square, range(20))
        assert out == [square(i) for i in range(20)]
        assert campaign.last_resumed == 0

    def test_killed_campaign_resumes_bit_identically(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        first = ResumableCampaign(store, fingerprint=self.FP, interval=4)
        with pytest.raises(KeyboardInterrupt):
            first.map(_KillAfter(TrialPool(1), 2), square, range(20))
        second = ResumableCampaign(store, fingerprint=self.FP, interval=4)
        out = second.map(TrialPool(1), square, range(20))
        assert out == [square(i) for i in range(20)]
        assert second.last_resumed == 8
        assert resilience_event_counts().get("campaign_resume", 0) >= 1

    def test_completed_campaign_short_circuits(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        ResumableCampaign(store, fingerprint=self.FP, interval=5).map(
            TrialPool(1), square, range(20)
        )
        calls = []

        def spy_fn(x):
            calls.append(x)
            return square(x)

        out = ResumableCampaign(store, fingerprint=self.FP, interval=5).map(
            TrialPool(1), spy_fn, range(20)
        )
        assert out == [square(i) for i in range(20)]
        assert calls == []

    def test_fingerprint_mismatch_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        ResumableCampaign(store, fingerprint=self.FP).map(
            TrialPool(1), square, range(20)
        )
        other = dict(self.FP, n=21)
        with pytest.raises(CheckpointMismatch):
            ResumableCampaign(store, fingerprint=other).map(
                TrialPool(1), square, range(20)
            )

    def test_total_mismatch_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        ResumableCampaign(store, fingerprint=self.FP).map(
            TrialPool(1), square, range(20)
        )
        with pytest.raises(CheckpointMismatch):
            ResumableCampaign(store, fingerprint=self.FP).map(
                TrialPool(1), square, range(10)
            )

    def test_resume_false_clears_and_restarts(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.ckpt")
        first = ResumableCampaign(store, fingerprint=self.FP, interval=4)
        with pytest.raises(KeyboardInterrupt):
            first.map(_KillAfter(TrialPool(1), 1), square, range(20))
        fresh = ResumableCampaign(
            store, fingerprint=self.FP, interval=4, resume=False
        )
        out = fresh.map(TrialPool(1), square, range(20))
        assert out == [square(i) for i in range(20)]
        assert fresh.last_resumed == 0

    def test_rng_stream_position_survives_the_kill(self, tmp_path):
        """Serial campaigns chaining draws resume mid-stream exactly."""

        def run(campaign, rng, kill_after=None):
            def trial(_i):
                return float(rng.random())

            pool = TrialPool(1)
            if kill_after is not None:
                pool = _KillAfter(pool, kill_after)
            return campaign.map(pool, trial, range(12))

        fp = {"experiment": "rng-chain"}
        ref_rng = np.random.default_rng(9)
        ref = run(
            ResumableCampaign(
                tmp_path / "a.ckpt", fingerprint=fp, interval=3, rng=ref_rng
            ),
            ref_rng,
        )
        store = CheckpointStore(tmp_path / "b.ckpt")
        killed_rng = np.random.default_rng(9)
        with pytest.raises(KeyboardInterrupt):
            run(
                ResumableCampaign(
                    store, fingerprint=fp, interval=3, rng=killed_rng
                ),
                killed_rng,
                kill_after=2,
            )
        resumed_rng = np.random.default_rng(9)  # cold process restart
        out = run(
            ResumableCampaign(
                store, fingerprint=fp, interval=3, rng=resumed_rng
            ),
            resumed_rng,
        )
        assert out == ref
        assert rng_state_digest(resumed_rng) == rng_state_digest(ref_rng)


# ---------------------------------------------------------------------------
# Experiment wiring (find_block / stability_experiment / trial_sweep)


def _mkcore(seed=31):
    return PhysicalCore(haswell().scaled(16), seed=seed)


class TestExperimentResume:
    def test_find_block_checkpoint_equals_plain_and_resumes(self, tmp_path):
        spy = Process("spy")
        kwargs = dict(max_candidates=24, workers=1)
        core_a = _mkcore()
        plain = find_block(core_a, spy, 0x400, DecodedState.ST, **kwargs)
        core_b = _mkcore()
        ckpt = find_block(
            core_b, spy, 0x400, DecodedState.ST,
            checkpoint=tmp_path / "fb.ckpt", **kwargs
        )
        assert ckpt.block.seed == plain.block.seed
        core_c = _mkcore()
        resumed = find_block(
            core_c, spy, 0x400, DecodedState.ST,
            checkpoint=tmp_path / "fb.ckpt", **kwargs
        )
        assert resumed.block.seed == plain.block.seed
        # Caller RNG position is checkpoint-independent.
        draws = {c.rng.integers(1 << 30) for c in (core_a, core_b, core_c)}
        assert len(draws) == 1

    def test_find_block_checkpoint_parameter_change_raises(self, tmp_path):
        spy = Process("spy")
        find_block(
            _mkcore(), spy, 0x400, DecodedState.ST,
            max_candidates=24, workers=1, checkpoint=tmp_path / "fb.ckpt",
        )
        with pytest.raises(CheckpointMismatch):
            find_block(
                _mkcore(), spy, 0x404, DecodedState.ST,
                max_candidates=24, workers=1,
                checkpoint=tmp_path / "fb.ckpt",
            )

    def test_stability_experiment_kill_and_resume(self, tmp_path):
        def factory():
            return PhysicalCore(haswell().scaled(16), seed=7)

        kwargs = dict(
            n_blocks=9, block_branches=400, repetitions=15, workers=1
        )
        ref = stability_experiment(factory, 0x400, **kwargs)
        store = CheckpointStore(tmp_path / "st.ckpt")

        count = {"n": 0}

        def dying_pre_trial(_seed):
            count["n"] += 1
            if count["n"] > 5:
                raise KeyboardInterrupt("simulated kill")

        with pytest.raises(KeyboardInterrupt):
            stability_experiment(
                factory, 0x400, checkpoint=store, checkpoint_interval=3,
                pre_trial=dying_pre_trial, **kwargs
            )
        resumed = stability_experiment(
            factory, 0x400, checkpoint=store, checkpoint_interval=3, **kwargs
        )
        assert resumed == ref
        assert resilience_event_counts().get("campaign_resume", 0) >= 1

    def test_stability_fingerprint_extra_distinguishes_campaigns(
        self, tmp_path
    ):
        def factory():
            return PhysicalCore(haswell().scaled(16), seed=7)

        kwargs = dict(
            n_blocks=6, block_branches=400, repetitions=10, workers=1
        )
        store = CheckpointStore(tmp_path / "st.ckpt")
        stability_experiment(
            factory, 0x400, checkpoint=store,
            fingerprint_extra={"core_seed": 7}, **kwargs
        )
        with pytest.raises(CheckpointMismatch):
            stability_experiment(
                factory, 0x400, checkpoint=store,
                fingerprint_extra={"core_seed": 8}, **kwargs
            )

    def test_trial_sweep_kill_and_resume(self, tmp_path):
        def build_channel():
            core = PhysicalCore(haswell().scaled(16), seed=20)
            return CovertChannel.for_processes(
                core,
                Process("victim"),
                Process("spy"),
                setting=NoiseSetting.NOISY,
                config=CovertConfig(block_branches=8000),
            )

        rng = np.random.default_rng(8)
        payloads = [rng.integers(0, 2, 30).tolist() for _ in range(6)]
        ref_channel = build_channel()
        ref = ref_channel.trial_sweep(payloads, workers=1, seed=0)
        store = CheckpointStore(tmp_path / "cov.ckpt")
        killed = build_channel()
        with pytest.raises(KeyboardInterrupt):
            killed.trial_sweep(
                payloads, seed=0, checkpoint=store, checkpoint_interval=2,
                pool=_KillAfter(TrialPool(1), 2),
            )
        resumed_channel = build_channel()
        resumed = resumed_channel.trial_sweep(
            payloads, workers=1, seed=0, checkpoint=store,
            checkpoint_interval=2,
        )
        assert resumed == ref
        assert resumed_channel.last_sweep_cycles == ref_channel.last_sweep_cycles


# ---------------------------------------------------------------------------
# Fault-injected campaigns end-to-end (chaos meets checkpointing)


@needs_fork
class TestChaosCampaign:
    def test_faulty_pool_with_checkpoints_matches_clean_run(self, tmp_path):
        def factory():
            return PhysicalCore(haswell().scaled(16), seed=7)

        kwargs = dict(
            n_blocks=8, block_branches=400, repetitions=15
        )
        ref = stability_experiment(factory, 0x400, workers=1, **kwargs)
        injector = FaultInjector(
            FaultSpec(crash_rate=0.3, corrupt_rate=0.2), seed=13
        )
        pool = TrialPool(
            2,
            chunk_size=1,
            supervise=SuperviseConfig(backoff_base=0.01, backoff_cap=0.05),
            fault_injector=injector,
        )
        chaotic = stability_experiment(
            factory, 0x400, pool=pool,
            checkpoint=tmp_path / "chaos.ckpt", checkpoint_interval=3,
            **kwargs
        )
        assert chaotic == ref


# ---------------------------------------------------------------------------
# CLI exit codes


class TestCliExitCodes:
    CAMPAIGN = [
        "campaign", "--blocks", "4", "--branches", "300",
        "--repetitions", "10",
    ]

    def test_success_is_zero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(self.CAMPAIGN + ["--checkpoint", str(tmp_path / "c")])
        assert code == 0
        assert "result digest" in capsys.readouterr().out

    def test_corrupt_checkpoint_exit_code(self, tmp_path, capsys):
        from repro.cli import EXIT_CHECKPOINT_CORRUPT, main

        ckpt = tmp_path / "c"
        ckpt.write_bytes(b"garbage")
        (tmp_path / "c.prev").write_bytes(b"garbage")
        code = main(self.CAMPAIGN + ["--checkpoint", str(ckpt)])
        assert code == EXIT_CHECKPOINT_CORRUPT == 4
        assert "checkpoint error" in capsys.readouterr().err

    def test_mismatched_checkpoint_exit_code(self, tmp_path, capsys):
        from repro.cli import EXIT_CHECKPOINT_CORRUPT, main

        ckpt = str(tmp_path / "c")
        assert main(self.CAMPAIGN + ["--checkpoint", ckpt]) == 0
        code = main(self.CAMPAIGN + ["--checkpoint", ckpt, "--seed", "99"])
        assert code == EXIT_CHECKPOINT_CORRUPT

    def test_fresh_clears_mismatched_checkpoint(self, tmp_path):
        from repro.cli import main

        ckpt = str(tmp_path / "c")
        assert main(self.CAMPAIGN + ["--checkpoint", ckpt]) == 0
        code = main(
            self.CAMPAIGN + ["--checkpoint", ckpt, "--seed", "99", "--fresh"]
        )
        assert code == 0

    def test_keyboard_interrupt_exit_code(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "campaign", interrupted)
        code = cli.main(self.CAMPAIGN)
        assert code == cli.EXIT_INTERRUPTED == 130
        assert "re-run the same command to resume" in capsys.readouterr().err

    def test_retry_exhaustion_exit_code(self, monkeypatch, capsys):
        import repro.cli as cli

        def exhausted(args):
            raise RetryExhaustedError(3, 4, "crash")

        monkeypatch.setitem(cli._COMMANDS, "campaign", exhausted)
        code = cli.main(self.CAMPAIGN)
        assert code == cli.EXIT_RETRY_EXHAUSTED == 5
        assert "chunk 3" in capsys.readouterr().err

    def test_campaign_resume_digest_matches(self, tmp_path, capsys):
        from repro.cli import main

        args = self.CAMPAIGN + ["--checkpoint", str(tmp_path / "c")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out

        def digest(text):
            return [
                line for line in text.splitlines()
                if line.startswith("result digest")
            ]

        assert digest(first) == digest(second)
        assert "resumed" in second


# ---------------------------------------------------------------------------
# Atomic emission


class TestAtomicEmission:
    def test_atomic_write_replaces_without_temp_litter(self, tmp_path):
        from repro.ioutil import atomic_write_text

        path = tmp_path / "out.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_manifest_write_is_atomic(self, tmp_path):
        from repro.obs import RunManifest

        manifest = RunManifest.capture("unit-test")
        out = manifest.write(tmp_path / "m.json")
        assert out.exists()
        loaded = RunManifest.load(out)
        assert loaded.name == "unit-test"
        assert [p.name for p in tmp_path.iterdir()] == ["m.json"]

    def test_write_result_emits_result_and_manifest(self, tmp_path):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
        try:
            from _common import write_result
        finally:
            sys.path.pop(0)

        path = write_result("unit_atomic", "hello", results_dir=tmp_path)
        assert path.read_text() == "hello\n"
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["unit_atomic.manifest.json", "unit_atomic.txt"]
