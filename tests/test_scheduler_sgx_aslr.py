"""OS substrate: scheduler, SGX enclave model, ASLR."""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.cpu import PhysicalCore, Process
from repro.system import (
    AslrConfig,
    AttackScheduler,
    Enclave,
    MaliciousOS,
    NoiseSetting,
)


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=21)


class TestNoiseSetting:
    def test_every_setting_has_a_model(self):
        for setting in NoiseSetting:
            assert setting.model() is not None

    def test_silent_model_is_silent(self, rng):
        assert NoiseSetting.SILENT.model().gap_branches(rng) == 0


class TestAttackScheduler:
    def test_default_jitter_by_setting(self, core):
        assert AttackScheduler(core, NoiseSetting.SILENT).victim_jitter == 0.0
        assert AttackScheduler(core, NoiseSetting.QUIESCED).victim_jitter == 0.0
        assert AttackScheduler(core, NoiseSetting.ISOLATED).victim_jitter > 0.0

    def test_invalid_jitter_rejected(self, core):
        with pytest.raises(ValueError):
            AttackScheduler(core, NoiseSetting.SILENT, victim_jitter=1.5)

    def test_stage_gap_injects_noise(self, core):
        scheduler = AttackScheduler(core, NoiseSetting.NOISY)
        before = core.predictor.bimodal.pht.snapshot()
        total = sum(scheduler.stage_gap() for _ in range(10))
        assert total > 0
        assert (core.predictor.bimodal.pht.snapshot() != before).any()

    def test_silent_stage_gap_is_noop(self, core):
        scheduler = AttackScheduler(core, NoiseSetting.SILENT)
        before = core.predictor.bimodal.pht.snapshot()
        assert scheduler.stage_gap() == 0
        assert (core.predictor.bimodal.pht.snapshot() == before).all()

    def test_victim_turn_runs_exactly_once_without_jitter(self, core):
        scheduler = AttackScheduler(core, NoiseSetting.SILENT)
        calls = []
        steps = scheduler.victim_turn(lambda: calls.append(1))
        assert steps == 1 and len(calls) == 1

    def test_victim_turn_jitter_produces_zero_or_double(self, core):
        scheduler = AttackScheduler(
            core, NoiseSetting.ISOLATED, victim_jitter=1.0
        )
        counts = set()
        for _ in range(30):
            calls = []
            scheduler.victim_turn(lambda: calls.append(1))
            counts.add(len(calls))
        assert counts == {0, 2}


class TestEnclave:
    def test_secret_is_only_reachable_via_step(self, core):
        secret = [True, False, True]
        cursor = {"i": 0}

        def step_fn(c):
            bit = secret[cursor["i"]]
            cursor["i"] += 1
            c.execute_branch(enclave.process, 0x400100, bit)

        enclave = Enclave(Process("sealed"), step_fn)
        assert enclave.process.enclave
        assert not hasattr(enclave, "secret")
        enclave.step(core)
        assert cursor["i"] == 1

    def test_malicious_os_single_step_is_precise(self, core):
        executed = []
        enclave = Enclave(
            Process("sealed"), lambda c: executed.append(1)
        )
        osctl = MaliciousOS(core)
        for _ in range(5):
            osctl.single_step(enclave)
        assert len(executed) == 5

    def test_quiesced_os_is_quieter_than_unquiesced(self, core):
        quiet = MaliciousOS(core, quiesce=True)
        loud = MaliciousOS(core, quiesce=False)
        rng_draws_q = np.mean([quiet.stage_gap() for _ in range(100)])
        rng_draws_l = np.mean([loud.stage_gap() for _ in range(100)])
        assert rng_draws_q < rng_draws_l


class TestAslr:
    def test_base_respects_alignment_and_entropy(self, rng):
        config = AslrConfig(entropy_bits=8, alignment=4096)
        for _ in range(50):
            base = config.randomize_base(0x400000, rng)
            assert (base - 0x400000) % 4096 == 0
            assert 0 <= (base - 0x400000) // 4096 < 256

    def test_randomized_process_relocates_branches(self, rng):
        config = AslrConfig(entropy_bits=8, alignment=4096)
        process = config.randomized_process("victim", rng)
        delta = process.load_base - process.link_base
        assert process.branch_address(0x401000) == 0x401000 + delta

    def test_bases_vary(self, rng):
        config = AslrConfig(entropy_bits=12, alignment=16)
        bases = {config.randomize_base(0, rng) for _ in range(40)}
        assert len(bases) > 20

    def test_validation(self):
        with pytest.raises(ValueError):
            AslrConfig(entropy_bits=0)
        with pytest.raises(ValueError):
            AslrConfig(alignment=0)

    def test_slots(self):
        assert AslrConfig(entropy_bits=10).slots == 1024
