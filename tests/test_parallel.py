"""Contract tests for the process-pool trial engine (repro.parallel).

The pool's promise is *serial semantics at any worker count*: ordered
results, payload-order-first search, closures over parent state, serial
fallback for nested pools, and SeedSequence-derived per-trial streams.
The Figure 4 / covert-sweep determinism tests that build on this live in
``tests/test_calibration_batch.py`` and below (``trial_sweep``).
"""

import os
import pickle

import numpy as np
import pytest

from repro.bpu import haswell
from repro.core.covert import CovertChannel, CovertConfig
from repro.cpu import PhysicalCore, Process
from repro.parallel import (
    TrialPool,
    fork_available,
    resolve_workers,
    spawn_rngs,
    spawn_seeds,
)
from repro.parallel.pool import WORKERS_ENV
from repro.snapshot import DeltaSnapshot, SnapshotTuple
from repro.system.scheduler import NoiseSetting

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork workers"
)


def square(payload):
    return payload * payload


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3
        assert TrialPool().workers == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(2) == 2

    @pytest.mark.parametrize("auto", ["auto", 0, "0"])
    def test_auto_means_cpu_count(self, auto):
        assert resolve_workers(auto) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [-1, "-2"])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            TrialPool(2, chunk_size=0)


class TestSpawnSeeds:
    def test_deterministic_and_independent(self):
        rngs_a = spawn_rngs(42, 4)
        rngs_b = spawn_rngs(42, 4)
        draws_a = [rng.integers(1 << 62) for rng in rngs_a]
        draws_b = [rng.integers(1 << 62) for rng in rngs_b]
        assert draws_a == draws_b
        # Sibling streams differ from each other.
        assert len(set(draws_a)) == len(draws_a)

    def test_seed_matters(self):
        a = [rng.integers(1 << 62) for rng in spawn_rngs(1, 3)]
        b = [rng.integers(1 << 62) for rng in spawn_rngs(2, 3)]
        assert a != b

    def test_spawn_seeds_are_seed_sequences(self):
        seeds = spawn_seeds(5, 2)
        assert all(isinstance(s, np.random.SeedSequence) for s in seeds)


class TestMap:
    def test_empty(self):
        assert TrialPool(4).map(square, []) == []

    def test_serial_matches_comprehension(self):
        payloads = list(range(17))
        assert TrialPool(1).map(square, payloads) == [
            p * p for p in payloads
        ]

    @needs_fork
    @pytest.mark.parametrize("workers", [2, 3, 5])
    @pytest.mark.parametrize("chunk_size", [None, 1, 4])
    def test_parallel_results_ordered(self, workers, chunk_size):
        payloads = list(range(23))
        pool = TrialPool(workers, chunk_size=chunk_size)
        assert pool.map(square, payloads) == [p * p for p in payloads]

    @needs_fork
    def test_closure_over_parent_state(self):
        """Trial functions may close over unpicklable parent state."""
        table = np.arange(64) * 3
        lookup = {"offset": 7}

        def trial(i):
            return int(table[i]) + lookup["offset"]

        assert TrialPool(3).map(trial, range(10)) == [
            i * 3 + 7 for i in range(10)
        ]

    @needs_fork
    def test_more_workers_than_payloads(self):
        assert TrialPool(8).map(square, [2, 3]) == [4, 9]

    @needs_fork
    def test_nested_pool_degrades_to_serial(self):
        """A pool inside a forked worker must not fork again."""

        def outer(i):
            inner = TrialPool(4)
            return inner.map(square, range(i + 1))

        assert TrialPool(2).map(outer, range(4)) == [
            [j * j for j in range(i + 1)] for i in range(4)
        ]


class TestFindFirst:
    def test_empty(self):
        assert TrialPool(2).find_first(square, []) is None

    def test_serial_stops_at_winner(self):
        calls = []

        def trial(i):
            calls.append(i)
            return i if i >= 3 else None

        assert TrialPool(1).find_first(trial, range(10)) == 3
        assert calls == [0, 1, 2, 3]

    def test_no_match(self):
        assert TrialPool(1).find_first(lambda i: None, range(5)) is None

    @needs_fork
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_returns_payload_order_first(self, workers):
        # Payloads 3, 5, 6 all match; the payload-order first must win
        # regardless of which worker finishes first.
        def trial(i):
            return i if i in (3, 5, 6) else None

        pool = TrialPool(workers, chunk_size=1)
        assert pool.find_first(trial, range(12)) == 3

    @needs_fork
    def test_custom_predicate(self):
        result = TrialPool(2).find_first(
            square, range(10), predicate=lambda r: r > 25
        )
        assert result == 36


class TestSnapshotPickling:
    """Checkpoints cross the worker boundary without their journal marks."""

    def test_delta_snapshot_roundtrip(self):
        snap = DeltaSnapshot(np.arange(10), mark=object())
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, DeltaSnapshot)
        np.testing.assert_array_equal(np.asarray(clone), np.arange(10))
        assert clone.journal_mark is None

    def test_snapshot_tuple_roundtrip(self):
        snap = SnapshotTuple((np.arange(4), np.ones(4)), mark=object())
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, SnapshotTuple)
        assert clone.journal_mark is None
        np.testing.assert_array_equal(clone[0], np.arange(4))
        np.testing.assert_array_equal(clone[1], np.ones(4))

    @needs_fork
    def test_checkpoint_as_worker_result(self):
        core = PhysicalCore(haswell().scaled(64), seed=3)
        spy = Process("spy")

        def trial(i):
            core.execute_branch(spy, 0x100 + i, True)
            return core.checkpoint(full=True)

        snapshots = TrialPool(2, chunk_size=1).map(trial, range(4))
        assert len(snapshots) == 4


def build_channel():
    core = PhysicalCore(haswell().scaled(16), seed=20)
    return CovertChannel.for_processes(
        core,
        Process("victim"),
        Process("spy"),
        setting=NoiseSetting.NOISY,
        config=CovertConfig(block_branches=8000),
    )


class TestTrialSweep:
    def payloads(self):
        rng = np.random.default_rng(8)
        return [rng.integers(0, 2, 40).tolist() for _ in range(6)]

    def test_worker_count_invariant(self):
        """Received bits and cycle costs match at any worker count."""
        results = {}
        for workers in (1, 3) if fork_available() else (1,):
            channel = build_channel()
            received = channel.trial_sweep(self.payloads(), workers=workers)
            results[workers] = (received, channel.last_sweep_cycles)
        first = next(iter(results.values()))
        assert all(value == first for value in results.values())
        received, cycles = first
        assert len(received) == 6 and len(cycles) == 6
        assert all(c > 0 for c in cycles)

    def test_channel_state_restored(self):
        channel = build_channel()
        before = channel.core.checkpoint(full=True)
        rng_state_before = channel.core.rng.bit_generator.state
        channel.trial_sweep(self.payloads(), workers=1)
        after = channel.core.checkpoint(full=True)

        def eq(a, b):
            if isinstance(a, dict):
                return set(a) == set(b) and all(eq(a[k], b[k]) for k in a)
            if isinstance(a, tuple):
                return len(a) == len(b) and all(
                    eq(x, y) for x, y in zip(a, b)
                )
            if isinstance(a, np.ndarray):
                return np.array_equal(a, b)
            return a == b

        assert eq(before, after)
        assert channel.core.rng.bit_generator.state == rng_state_before

    def test_sweep_decodes_noisy_channel(self):
        channel = build_channel()
        payloads = self.payloads()
        received = channel.trial_sweep(payloads, seed=5)
        errors = sum(
            sum(1 for a, b in zip(sent, got) if a != b)
            for sent, got in zip(payloads, received)
        )
        total = sum(len(p) for p in payloads)
        assert errors / total < 0.1

    def test_empty_sweep(self):
        channel = build_channel()
        assert channel.trial_sweep([]) == []
        assert channel.last_sweep_cycles == []
