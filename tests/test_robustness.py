"""Failure injection and graceful degradation.

The attack must *degrade*, never crash, when its environment turns
hostile: extreme noise, garbage initial state, silent victims, stacked
defenses, extreme geometries.
"""

import numpy as np
import pytest

from repro.bpu import haswell, skylake
from repro.bpu.fsm import State
from repro.core.attack import BranchScope
from repro.core.calibration import CalibrationError, find_block
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.core.patterns import DecodedState
from repro.cpu import PhysicalCore, Process
from repro.mitigations import (
    BpuPartitioning,
    BtbFlushOnContextSwitch,
    NoisyPerformanceCounters,
    NoisyTimer,
    PhtIndexRandomization,
    StaticPredictionForSensitiveBranches,
    StochasticFSM,
)
from repro.system.noise import NoiseModel, inject_noise
from repro.system.scheduler import AttackScheduler, NoiseSetting
from repro.victims import SecretBitArrayVictim

SMALL_BLOCK = 8000


class TestExtremeNoise:
    def test_attack_survives_noise_storms(self):
        """Under absurd noise the attack returns garbage, not exceptions."""
        core = PhysicalCore(haswell().scaled(16), seed=131)
        secret = np.random.default_rng(1).integers(0, 2, 30).tolist()
        victim = SecretBitArrayVictim(secret)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        attack.calibrate()
        storm = NoiseModel(
            ambient_branches=20_000, burst_prob=0.5, burst_size=50_000
        )
        attack.scheduler.noise_model = storm
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), 30
        )
        assert len(recovered) == 30
        assert all(isinstance(bit, bool) for bit in recovered)

    def test_storm_error_rate_approaches_coin_flip(self):
        core = PhysicalCore(haswell().scaled(16), seed=132)
        victim = Process("victim")
        spy = Process("spy")
        channel = CovertChannel.for_processes(
            core, victim, spy,
            setting=NoiseSetting.SILENT,
            config=CovertConfig(block_branches=SMALL_BLOCK),
        )
        channel.scheduler.noise_model = NoiseModel(
            ambient_branches=50_000, burst_prob=0.0, burst_size=0
        )
        bits = np.random.default_rng(2).integers(0, 2, 150).tolist()
        received = channel.transmit(bits)
        # Some information may survive, but the channel is badly broken.
        assert error_rate(bits, received) > 0.15


class TestHostileInitialState:
    def test_calibration_with_scrambled_pht(self):
        core = PhysicalCore(haswell().scaled(16), seed=133)
        core.predictor.bimodal.pht.randomize(np.random.default_rng(9))
        core.predictor.gshare.pht.randomize(np.random.default_rng(10))
        compiled = find_block(
            core,
            Process("spy"),
            0x30_0006D,
            DecodedState.SN,
            block_branches=SMALL_BLOCK,
            repetitions=10,
        )
        assert compiled.pins_entry(core, 0x30_0006D)

    def test_attack_after_heavy_prior_activity(self):
        core = PhysicalCore(haswell().scaled(16), seed=134)
        inject_noise(core, 200_000, core.rng)
        secret = [1, 0, 1, 1, 0, 1, 0, 0]
        victim = SecretBitArrayVictim(secret)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), len(secret)
        )
        assert [int(b) for b in recovered] == secret


class TestSilentVictim:
    def test_never_triggered_victim_reads_as_prime_state(self):
        """A victim that never runs leaves the primed entry untouched, so
        every recovered bit equals the not-taken decode — no crash, and
        no spurious 'taken' claims."""
        core = PhysicalCore(haswell().scaled(16), seed=135)
        attack = BranchScope(
            core,
            Process("spy"),
            0x30_0006D,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        recovered = attack.spy_on_bits(lambda: None, 20)
        assert recovered == [False] * 20


class TestStackedDefenses:
    def test_all_defenses_at_once(self):
        """Kitchen-sink defense stack: nothing crashes, nothing leaks."""
        core = PhysicalCore(haswell().scaled(16), seed=136)
        core.install_mitigation(
            PhtIndexRandomization(np.random.default_rng(0))
        )
        core.install_mitigation(
            BpuPartitioning.by_process(
                core.predictor.bimodal.pht.n_entries, n_partitions=4
            )
        )
        core.install_mitigation(StaticPredictionForSensitiveBranches())
        core.install_mitigation(NoisyPerformanceCounters(magnitude=2))
        core.install_mitigation(NoisyTimer(sigma=60))
        core.install_mitigation(StochasticFSM(flip_prob=0.2))
        core.install_mitigation(BtbFlushOnContextSwitch())

        secret = np.random.default_rng(3).integers(0, 2, 40).tolist()
        victim = SecretBitArrayVictim(secret)
        victim.process.protect_branch(victim.branch_address)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            block_branches=SMALL_BLOCK,
        )
        try:
            recovered = attack.spy_on_bits(
                lambda: victim.execute_next(core), 40
            )
        except CalibrationError:
            return  # calibration impossible: defenses win outright
        wrong = sum(
            int(r) != s for r, s in zip(recovered, secret)
        )
        assert wrong / 40 > 0.2


class TestExtremeGeometries:
    def test_tiny_tables_still_function(self):
        config = haswell().scaled(256)  # 64-entry PHT
        core = PhysicalCore(config, seed=137)
        process = Process("p")
        for i in range(200):
            core.execute_branch(process, i * 3, i % 2 == 0)
        assert core.clock.now > 0

    def test_covert_on_tiny_core(self):
        config = haswell().scaled(64)  # 256-entry PHT
        core = PhysicalCore(config, seed=138)
        channel = CovertChannel.for_processes(
            core,
            Process("victim"),
            Process("spy"),
            setting=NoiseSetting.SILENT,
            config=CovertConfig(block_branches=4000),
        )
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert channel.transmit(bits) == bits

    def test_one_bit_ghr(self):
        from dataclasses import replace

        config = replace(haswell().scaled(64), ghr_bits=1)
        core = PhysicalCore(config, seed=139)
        process = Process("p")
        for i in range(50):
            core.execute_branch(process, 0x100, i % 3 == 0)
        assert core.predictor.ghr.value in (0, 1)


class TestPolarityAndWorkingPoints:
    def test_inverted_polarity_channel(self):
        core = PhysicalCore(haswell().scaled(16), seed=140)
        channel = CovertChannel.for_processes(
            core,
            Process("victim"),
            Process("spy"),
            setting=NoiseSetting.SILENT,
            config=CovertConfig(block_branches=SMALL_BLOCK, taken_bit=0),
        )
        bits = [1, 0, 0, 1, 1, 0]
        assert channel.transmit(bits) == bits

    @pytest.mark.parametrize(
        "prime,probe",
        [
            (State.SN, (True, True)),
            (State.ST, (False, False)),
            (State.WN, (True, True)),
        ],
    )
    def test_alternative_working_points_haswell(self, prime, probe):
        core = PhysicalCore(haswell().scaled(16), seed=141)
        secret = [1, 0, 1, 1, 0, 1]
        victim = SecretBitArrayVictim(secret)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=NoiseSetting.SILENT,
            prime_state=prime,
            probe_outcomes=probe,
            block_branches=SMALL_BLOCK,
        )
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), len(secret)
        )
        assert [int(b) for b in recovered] == secret

    def test_ambiguous_working_point_rejected_on_skylake(self):
        core = PhysicalCore(skylake().scaled(16), seed=142)
        with pytest.raises(ValueError):
            BranchScope(
                core,
                Process("spy"),
                0x30_0006D,
                prime_state=State.ST,
                probe_outcomes=(False, False),
                block_branches=SMALL_BLOCK,
            )
