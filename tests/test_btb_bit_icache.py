"""Tagged cache-like structures: BTB, branch identification table, i-cache."""

import pytest

from repro.bpu.bit import BranchIdentificationTable
from repro.bpu.btb import BranchTargetBuffer
from repro.cpu.icache import InstructionCache


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.lookup(0x400000) is None
        btb.allocate(0x400000, 0x400100)
        entry = btb.lookup(0x400000)
        assert entry is not None and entry.target == 0x400100

    def test_aliasing_address_with_different_tag_misses(self):
        btb = BranchTargetBuffer(64)
        btb.allocate(0x400000, 0x1)
        assert btb.lookup(0x400000 + 64) is None  # same set, other tag

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(64)
        btb.allocate(0x400000, 0x1)
        btb.allocate(0x400000 + 64, 0x2)  # same set
        assert btb.lookup(0x400000) is None
        assert btb.lookup(0x400000 + 64).target == 0x2

    def test_evict_and_flush(self):
        btb = BranchTargetBuffer(64)
        btb.allocate(0x10, 0x1)
        btb.evict(0x10)
        assert btb.lookup(0x10) is None
        btb.allocate(0x10, 0x1)
        btb.allocate(0x20, 0x2)
        btb.flush()
        assert btb.lookup(0x10) is None and btb.lookup(0x20) is None

    def test_snapshot_restore(self):
        btb = BranchTargetBuffer(8)
        btb.allocate(3, 99)
        snap = btb.snapshot()
        btb.flush()
        btb.restore(snap)
        assert btb.lookup(3).target == 99

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0)
        with pytest.raises(ValueError):
            BranchTargetBuffer(8, tag_bits=0)


class TestBIT:
    def test_insert_then_contains(self):
        bit = BranchIdentificationTable(64)
        assert not bit.contains(0x1234)
        bit.insert(0x1234)
        assert bit.contains(0x1234)

    def test_aliasing_eviction_is_the_attack_lever(self):
        """Executing another branch in the same set evicts the victim —
        how the randomisation block forces 1-level mode (paper §5.2)."""
        bit = BranchIdentificationTable(64)
        victim = 0x400040
        bit.insert(victim)
        bit.insert(victim + 64)  # same set, different tag
        assert not bit.contains(victim)

    def test_evict_and_flush(self):
        bit = BranchIdentificationTable(16)
        bit.insert(5)
        bit.evict(5)
        assert not bit.contains(5)
        bit.insert(5)
        bit.flush()
        assert not bit.contains(5)

    def test_snapshot_restore(self):
        bit = BranchIdentificationTable(16)
        bit.insert(7)
        snap = bit.snapshot()
        bit.flush()
        bit.restore(snap)
        assert bit.contains(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchIdentificationTable(0)


class TestICache:
    def test_first_fetch_misses_second_hits(self):
        icache = InstructionCache(64)
        assert not icache.fetch(0x400000)
        assert icache.fetch(0x400000)

    def test_line_granularity(self):
        """Addresses on the same 64-byte line share presence."""
        icache = InstructionCache(64)
        icache.fetch(0x400000)
        assert icache.contains(0x40003F)
        assert not icache.contains(0x400040)

    def test_evict(self):
        icache = InstructionCache(64)
        icache.fetch(0x1000)
        icache.evict(0x1000)
        assert not icache.contains(0x1000)

    def test_flush(self):
        icache = InstructionCache(64)
        icache.fetch(0x1000)
        icache.flush()
        assert not icache.contains(0x1000)

    def test_conflict_on_same_set(self):
        icache = InstructionCache(n_sets=4, line_bytes=64)
        icache.fetch(0)
        icache.fetch(4 * 64)  # same set, different tag
        assert not icache.contains(0)

    def test_snapshot_restore(self):
        icache = InstructionCache(16)
        icache.fetch(0x40)
        snap = icache.snapshot()
        icache.flush()
        icache.restore(snap)
        assert icache.contains(0x40)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstructionCache(0)
