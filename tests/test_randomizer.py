"""Randomisation block: generation, exact execution, compiled fast path."""

import numpy as np
import pytest

from repro.bpu import haswell, skylake
from repro.cpu import PhysicalCore, Process
from repro.core.randomizer import CompiledBlock, RandomizationBlock

BLOCK_N = 6000


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=5)


@pytest.fixture
def spy():
    return Process("spy")


@pytest.fixture
def block():
    return RandomizationBlock.generate(seed=3, n_branches=BLOCK_N)


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = RandomizationBlock.generate(1, 100)
        b = RandomizationBlock.generate(1, 100)
        assert (a.addresses == b.addresses).all()
        assert (a.outcomes == b.outcomes).all()

    def test_different_seeds_differ(self):
        a = RandomizationBlock.generate(1, 100)
        b = RandomizationBlock.generate(2, 100)
        assert (a.outcomes != b.outcomes).any()

    def test_listing1_address_steps(self, block):
        """je/jne is 2 bytes, optional NOP adds 1: steps are 2 or 3."""
        steps = np.diff(block.addresses)
        assert set(np.unique(steps)).issubset({2, 3})

    def test_addresses_strictly_increase(self, block):
        assert (np.diff(block.addresses) > 0).all()

    def test_outcomes_roughly_balanced(self, block):
        rate = block.outcomes.mean()
        assert 0.45 < rate < 0.55

    def test_len(self, block):
        assert len(block) == BLOCK_N

    def test_needs_positive_size(self):
        with pytest.raises(ValueError):
            RandomizationBlock.generate(0, 0)


class TestGhrTrajectory:
    def test_first_entry_is_zero_history(self, block):
        assert block.ghr_trajectory(8)[0] == 0

    def test_matches_manual_shift_register(self, block):
        bits = 10
        trajectory = block.ghr_trajectory(bits)
        value = 0
        for i in range(50):
            assert trajectory[i] == value
            value = ((value << 1) | int(block.outcomes[i])) & ((1 << bits) - 1)


class TestCompiledVsExact:
    """The fast path must reproduce the exact path's end state."""

    def _run_both(self, core_factory, block):
        exact = core_factory()
        fast = core_factory()
        spy = Process("spy")
        # Same starting microarchitectural state, scrambled for generality.
        scramble = np.random.default_rng(1)
        exact.predictor.bimodal.pht.randomize(scramble)
        fast.predictor.bimodal.pht.restore(
            exact.predictor.bimodal.pht.snapshot()
        )
        # Compiled path assumes all-zero initial GHR; align the exact run.
        exact.predictor.ghr.clear()
        fast.predictor.ghr.clear()

        compiled = block.compile(fast, spy)
        block.execute(exact, spy)
        compiled.apply(fast, spy)
        return exact, fast

    def test_bimodal_pht_exact_match(self, block):
        exact, fast = self._run_both(
            lambda: PhysicalCore(haswell().scaled(16), seed=5), block
        )
        assert (
            exact.predictor.bimodal.pht.levels
            == fast.predictor.bimodal.pht.levels
        ).all()

    def test_gshare_pht_matches_with_zero_initial_history(self, block):
        exact, fast = self._run_both(
            lambda: PhysicalCore(haswell().scaled(16), seed=5), block
        )
        assert (
            exact.predictor.gshare.pht.levels
            == fast.predictor.gshare.pht.levels
        ).all()

    def test_selector_matches(self, block):
        exact, fast = self._run_both(
            lambda: PhysicalCore(haswell().scaled(16), seed=5), block
        )
        assert (
            exact.predictor.selector.counters
            == fast.predictor.selector.counters
        ).all()

    def test_bit_matches(self, block):
        exact, fast = self._run_both(
            lambda: PhysicalCore(haswell().scaled(16), seed=5), block
        )
        tags_e, valid_e = exact.predictor.bit.snapshot()
        tags_f, valid_f = fast.predictor.bit.snapshot()
        assert (valid_e == valid_f).all()
        assert (tags_e[valid_e] == tags_f[valid_f]).all()

    def test_ghr_matches(self, block):
        exact, fast = self._run_both(
            lambda: PhysicalCore(haswell().scaled(16), seed=5), block
        )
        assert exact.predictor.ghr.value == fast.predictor.ghr.value

    def test_skylake_fsm_also_matches(self, block):
        exact, fast = self._run_both(
            lambda: PhysicalCore(skylake().scaled(16), seed=5), block
        )
        assert (
            exact.predictor.bimodal.pht.levels
            == fast.predictor.bimodal.pht.levels
        ).all()


class TestCompiledBlock:
    def test_apply_rejects_other_config(self, core, spy, block):
        compiled = block.compile(core, spy)
        other = PhysicalCore(skylake().scaled(16), seed=0)
        with pytest.raises(ValueError):
            compiled.apply(other, spy)

    def test_apply_charges_counters_and_clock(self, core, spy, block):
        from repro.cpu.counters import CounterKind

        compiled = block.compile(core, spy)
        compiled.apply(core, spy)
        assert core.clock.now == compiled.cycles
        assert (
            core.counters_for(spy).read(CounterKind.BRANCHES) == BLOCK_N
        )

    def test_entry_fold_matches_compiled_row(self, core, spy, block):
        compiled = block.compile(core, spy)
        for address in (0x30_0006D, 0x12345, 0x0):
            row = block.entry_fold(core, spy, address)
            assert (row == compiled.target_entry_map(core, address)).all()

    def test_pins_entry_detects_constant_rows(self, core, spy, block):
        compiled = block.compile(core, spy)
        n = core.predictor.bimodal.pht.n_entries
        pinned = [
            compiled.pins_entry(core, a) for a in range(0x400000, 0x400000 + n)
        ]
        rows = [
            compiled.target_entry_map(core, a)
            for a in range(0x400000, 0x400000 + n)
        ]
        for flag, row in zip(pinned, rows):
            assert flag == bool((row == row[0]).all())

    def test_apply_forces_victim_branch_cold(self, core, spy, block):
        """After the block, a previously-seen branch is new again (§5.2)."""
        victim_address = 0x30_0006D
        victim = Process("victim")
        core.execute_branch(victim, victim_address, True)
        assert core.predictor.bit.contains(victim_address)
        compiled = block.compile(core, spy)
        compiled.apply(core, spy)
        assert not core.predictor.bit.contains(victim_address)
        record = core.execute_branch(victim, victim_address, True)
        assert record.prediction.cold

    def test_apply_is_reproducible(self, core, spy, block):
        """Same pre-state + same block => same post-state (§6.2's lever)."""
        compiled = block.compile(core, spy)
        checkpoint = core.checkpoint()
        compiled.apply(core, spy)
        first = core.predictor.bimodal.pht.snapshot()
        core.restore(checkpoint)
        compiled.apply(core, spy)
        assert (core.predictor.bimodal.pht.snapshot() == first).all()
