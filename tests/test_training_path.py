"""Regression tests for the consolidated training path.

Three bugs are pinned here:

* ``GSharePredictor.update`` used to ignore ``partition`` (and recompute
  the index), so a partitioned context could train outside its slice;
* ``PhysicalCore.execute_branch`` used to re-implement the hybrid
  training sequence inline, drifting from ``HybridPredictor.update``;
* ``PhysicalCore.restore`` kept counter files of processes first seen
  after ``checkpoint()``, so rollback was not a true rollback.
"""

import numpy as np
import pytest

from repro.bpu import haswell
from repro.bpu.fsm import State, textbook_2bit_fsm
from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.gshare import GSharePredictor
from repro.bpu.partition import Partition
from repro.bpu.pht import PatternHistoryTable
from repro.cpu import CounterKind, PhysicalCore, Process
from repro.mitigations import BpuPartitioning
from repro.mitigations.base import Mitigation


@pytest.fixture
def core():
    return PhysicalCore(haswell().scaled(16), seed=7)


class TestGsharePartitionedTraining:
    def test_update_confines_training_to_partition(self):
        fsm = textbook_2bit_fsm()
        pht = PatternHistoryTable(64, fsm)
        gshare = GSharePredictor(pht, GlobalHistoryRegister(8))
        part = Partition(offset=16, size=16)
        before = pht.snapshot()
        for address in range(0x1000, 0x1040, 3):
            gshare.update(address, True, partition=part)
        changed = np.flatnonzero(pht.snapshot() != before)
        assert changed.size > 0
        assert changed.min() >= 16 and changed.max() < 32

    def test_update_prefers_recorded_index(self):
        fsm = textbook_2bit_fsm()
        pht = PatternHistoryTable(64, fsm)
        gshare = GSharePredictor(pht, GlobalHistoryRegister(8))
        before = pht.snapshot()
        gshare.update(0x1234, True, index=5)
        changed = np.flatnonzero(pht.snapshot() != before)
        assert list(changed) == [5]

    def test_partitioned_process_trains_in_slice_end_to_end(self, core):
        core.install_mitigation(
            BpuPartitioning.by_process(
                core.predictor.bimodal.pht.n_entries, n_partitions=4
            )
        )
        spy = Process("spy")
        part = core.mitigations.partition(spy)
        gshare_before = core.predictor.gshare.pht.snapshot()
        bimodal_before = core.predictor.bimodal.pht.snapshot()
        rng = np.random.default_rng(1)
        for address in range(0x400000, 0x400400, 7):
            core.execute_branch(spy, address, bool(rng.integers(0, 2)))
        lo, hi = part.offset, part.offset + part.size
        for before, pht in (
            (gshare_before, core.predictor.gshare.pht),
            (bimodal_before, core.predictor.bimodal.pht),
        ):
            changed = np.flatnonzero(pht.snapshot() != before)
            assert changed.size > 0
            assert changed.min() >= lo and changed.max() < hi


class TestSingleTrainingPath:
    def test_execute_branch_resolves_through_hybrid_update(self, core):
        """The core delegates training; it must not duplicate it inline."""
        calls = []
        original = core.predictor.update

        def recording(address, taken, prediction, **kwargs):
            calls.append((address, taken, prediction, kwargs))
            return original(address, taken, prediction, **kwargs)

        core.predictor.update = recording
        record = core.execute_branch(Process("spy"), 0x400100, True)
        assert len(calls) == 1
        address, taken, prediction, kwargs = calls[0]
        assert address == 0x400100 and taken is True
        assert prediction is record.prediction
        assert kwargs["train_outcome"] is True

    def test_train_outcome_corrupts_only_pht(self, core):
        class AlwaysFlip(Mitigation):
            name = "always-flip"

            def update_outcome(self, rng, taken):
                return not taken

        core.install_mitigation(AlwaysFlip())
        spy = Process("spy")
        address = 0x400200
        record = core.execute_branch(spy, address, True)
        # PHT trained with the corrupted (not-taken) outcome: WN -> SN.
        assert core.predictor.bimodal_state(address) is State.SN
        # Architectural side still saw the true outcome.
        assert core.predictor.ghr.value & 1 == 1
        assert record.taken is True
        assert core.predictor.btb.lookup(address) is not None

    def test_default_train_outcome_is_architectural(self, core):
        spy = Process("spy")
        address = 0x400300
        core.execute_branch(spy, address, True)
        assert core.predictor.bimodal_state(address) is State.WT


class TestRestoreRollback:
    def test_post_checkpoint_process_counters_roll_back(self, core):
        veteran = Process("veteran")
        core.execute_branch(veteran, 0x400100, True)
        checkpoint = core.checkpoint()
        core.execute_branch(veteran, 0x400100, True)
        newcomer = Process("newcomer")
        core.execute_branch(newcomer, 0x400200, False)
        assert core.read_counter(newcomer, CounterKind.BRANCHES) == 1
        core.restore(checkpoint)
        # The newcomer was never seen before the checkpoint: a true
        # rollback leaves it with a fresh, zeroed counter file.
        assert core.read_counter(newcomer, CounterKind.BRANCHES) == 0
        assert core.read_counter(veteran, CounterKind.BRANCHES) == 1

    def test_restore_is_idempotent_for_known_processes(self, core):
        veteran = Process("veteran")
        core.execute_branch(veteran, 0x400100, True)
        checkpoint = core.checkpoint()
        core.restore(checkpoint)
        core.restore(checkpoint)
        assert core.read_counter(veteran, CounterKind.BRANCHES) == 1
