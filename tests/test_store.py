"""Tests for ``repro.store`` — the content-addressed persistent cache.

Covers key derivation stability, the two-tier lookup path (memory hit /
disk hit / miss, with per-tier stats), corruption quarantine, size-budget
eviction, the process-default plumbing (``configure_store`` and the
``REPRO_STORE_DIR`` env var), and the two in-tree cache hooks: the
compiled-block LRU's persistent tier and the manycore summary cache.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import store as repro_store
from repro.bpu import skylake
from repro.core.manycore import ManycoreCampaignPool
from repro.core.randomizer import (
    RandomizationBlock,
    clear_compile_cache,
    compile_cache_info,
)
from repro.cpu import PhysicalCore, Process
from repro.store import ContentStore, configure_store, get_store, store_key


@pytest.fixture(autouse=True)
def _no_default_store():
    """Each test starts and ends with no process-default store."""
    configure_store(None)
    clear_compile_cache()
    yield
    configure_store(None)
    clear_compile_cache()


@pytest.fixture
def store(tmp_path) -> ContentStore:
    return ContentStore(tmp_path / "store")


class TestStoreKey:
    def test_deterministic_and_order_insensitive(self):
        a = store_key("thing", alpha=1, beta="x")
        b = store_key("thing", beta="x", alpha=1)
        assert a == b
        assert a.startswith("thing-")

    def test_distinct_parts_distinct_keys(self):
        base = store_key("thing", alpha=1)
        assert store_key("thing", alpha=2) != base
        assert store_key("other", alpha=1) != base
        # Type distinctions survive canonicalisation.
        assert store_key("thing", alpha="1") != base

    def test_nested_containers_canonicalise(self):
        a = store_key("k", parts=(1, "two", (3.0, None)))
        b = store_key("k", parts=[1, "two", [3.0, None]])
        assert a == b  # tuples and lists canonicalise alike

    def test_unstable_repr_rejected(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="no stable repr"):
            store_key("thing", obj=Opaque())


class TestContentStore:
    def test_miss_then_put_then_memory_hit(self, store):
        key = store_key("unit", n=1)
        found, value = store.get(key)
        assert not found and value is None
        store.put(key, {"answer": 42})
        found, value = store.get(key)
        assert found and value == {"answer": 42}
        stats = store.stats_dict()
        assert stats["misses"] == 1
        assert stats["memory_hits"] == 1
        assert stats["disk_hits"] == 0
        assert stats["puts"] == 1
        assert stats["bytes_written"] > 0

    def test_disk_hit_survives_new_process_state(self, store, tmp_path):
        key = store_key("unit", n=2)
        store.put(key, [1, 2, 3])
        # A second store over the same root models a fresh process.
        fresh = ContentStore(tmp_path / "store")
        found, value = fresh.get(key)
        assert found and value == [1, 2, 3]
        assert fresh.stats_dict()["disk_hits"] == 1
        # The disk hit populated the memory tier.
        found, _ = fresh.get(key)
        assert found
        assert fresh.stats_dict()["memory_hits"] == 1

    def test_memory_false_bypasses_memory_tier(self, store):
        key = store_key("unit", n=3)
        store.put(key, "v", memory=False)
        found, value = store.get(key, memory=False)
        assert found and value == "v"
        stats = store.stats_dict()
        assert stats["disk_hits"] == 1
        assert stats["memory_hits"] == 0

    def test_contains_and_total_bytes(self, store):
        key = store_key("unit", n=4)
        assert not store.contains(key)
        store.put(key, b"payload")
        assert store.contains(key)
        assert store.total_bytes() > 0

    def test_corrupt_file_reads_as_miss_and_is_deleted(self, store):
        key = store_key("unit", n=5)
        store.put(key, "good")
        path = store.root / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[:-3] + b"???")
        found, value = store.get(key, memory=False)  # force the disk path
        assert not found and value is None
        assert not path.exists()
        stats = store.stats_dict()
        assert stats["corrupt"] == 1

    def test_foreign_file_reads_as_miss(self, store):
        key = store_key("unit", n=6)
        (store.root / f"{key}.pkl").write_bytes(b"not a store file")
        found, _ = store.get(key)
        assert not found
        assert store.stats_dict()["corrupt"] == 1

    def test_eviction_to_byte_budget(self, tmp_path):
        store = ContentStore(tmp_path / "s", max_bytes=1)
        blob = os.urandom(512)
        keys = [store_key("unit", n=i, blob=i) for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, blob + bytes([i]))
        # Budget of one byte: every put immediately evicts down to at
        # most one resident file (the newest, which alone exceeds it).
        assert store.stats_dict()["evictions"] >= 3
        resident = list((tmp_path / "s").glob("*.pkl"))
        assert len(resident) <= 1

    def test_lru_eviction_prefers_stale_entries(self, tmp_path):
        store = ContentStore(tmp_path / "s", max_bytes=0)  # 0 = unbounded
        old, new = store_key("u", n=1), store_key("u", n=2)
        store.put(old, "old")
        store.put(new, "new")
        # Make mtimes deterministic, then touch ``old`` via a hit.
        os.utime(store.root / f"{old}.pkl", (1, 1))
        os.utime(store.root / f"{new}.pkl", (2, 2))
        store.get(old, memory=False)
        store.max_bytes = store.total_bytes() - 1
        store.evict_to_budget()
        assert store.contains(old)  # recently used: kept
        assert not store.contains(new)

    def test_memory_tier_is_bounded(self, tmp_path):
        store = ContentStore(tmp_path / "s", memory_entries=2)
        keys = [store_key("u", n=i) for i in range(3)]
        for key in keys:
            store.put(key, key)
        assert len(store._memory) == 2
        assert keys[0] not in store._memory  # oldest evicted

    def test_clear_drops_both_tiers(self, store):
        key = store_key("unit", n=7)
        store.put(key, "v")
        store.clear()
        assert not store.contains(key)
        assert store.total_bytes() == 0


class TestDefaultStore:
    def test_unconfigured_returns_none(self):
        assert get_store() is None

    def test_configure_and_clear(self, tmp_path):
        store = configure_store(tmp_path / "s")
        assert isinstance(store, ContentStore)
        assert get_store() is store
        configure_store(None)
        assert get_store() is None

    def test_env_var_configures_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(repro_store.STORE_DIR_ENV, str(tmp_path / "env"))
        monkeypatch.setenv(repro_store.STORE_BYTES_ENV, "12345")
        # Reset the latch the autouse fixture set via configure_store.
        repro_store._ENV_CHECKED = False
        repro_store._DEFAULT_STORE = None
        store = get_store()
        assert store is not None
        assert store.root == tmp_path / "env"
        assert store.max_bytes == 12345


class TestCompileCachePersistentTier:
    def test_disk_tier_survives_lru_clear(self, tmp_path, skylake_core, spy):
        configure_store(tmp_path / "s")
        block = RandomizationBlock.generate(3, n_branches=500)
        first = block.compile(skylake_core, spy)
        info = compile_cache_info()
        assert info["misses"] == 1 and info["disk_hits"] == 0

        # Dropping the in-process LRU must not drop the persistent tier.
        clear_compile_cache()
        fresh_core = PhysicalCore(skylake().scaled(16), seed=7)
        again = block.compile(fresh_core, Process("spy"))
        info = compile_cache_info()
        assert info["disk_hits"] == 1
        assert info["memory_hits"] == 0
        np.testing.assert_array_equal(first.bimodal_map, again.bimodal_map)
        np.testing.assert_array_equal(first.gshare_map, again.gshare_map)
        assert first.ghr_end == again.ghr_end

    def test_store_traffic_attributed_to_compiled_block_kind(
        self, tmp_path, skylake_core, spy
    ):
        store = configure_store(tmp_path / "s")
        RandomizationBlock.generate(4, n_branches=500).compile(
            skylake_core, spy
        )
        stats = store.stats_dict()
        assert stats["puts"] == 1
        assert stats["misses"] == 1


class TestManycoreSummaryCache:
    def _run(self):
        def factory():
            return PhysicalCore(skylake().scaled(16), seed=7)

        pool = ManycoreCampaignPool(
            factory, 0x4200, block_branches=2_000, repetitions=10
        )
        return pool.map(None, range(12))

    def test_summary_cache_is_exact_and_hits(self, tmp_path):
        reference = self._run()  # no store configured
        store = configure_store(tmp_path / "s")
        assert self._run() == reference  # cold: misses, then puts
        cold = store.stats_dict()
        assert cold["puts"] >= 1
        assert self._run() == reference  # warm: served from the store
        warm = store.stats_dict()
        assert warm["memory_hits"] > cold["memory_hits"]
        assert warm["puts"] == cold["puts"]
